// Command replicate runs the task-replication overhead and scalability
// experiments for a single benchmark on the virtual cluster (the per-
// benchmark view of Figures 4-6):
//
//	replicate -bench nbody -scale small -nodes 4,8,16,32,64 -cores 16 -rate 1e-3
//
// It prints, for each machine size: fault-free and replicated makespans,
// overhead, speedup and recovery activity. The runs execute on the sweep
// engine (-parallel workers, -cache entries); -csv dumps the per-request
// stage timings and -check-cache re-runs the whole sweep to prove the
// second pass is served from the cache with an identical table — the
// `make check-sweep` gate. A failed simulation exits non-zero naming the
// request that failed; a partial table is never printed as success.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"appfit/internal/bench"
	"appfit/internal/bench/workload"
	"appfit/internal/cluster"
	"appfit/internal/fault"
	"appfit/internal/stats"
	"appfit/internal/sweep"
)

func main() {
	benchName := flag.String("bench", "stream", "benchmark name")
	scaleFlag := flag.String("scale", "small", "tiny, small or medium")
	nodesFlag := flag.String("nodes", "1", "comma-separated node counts")
	cores := flag.Int("cores", 16, "cores per node")
	rate := flag.Float64("rate", 0, "per-execution fault probability (split evenly DUE/SDC)")
	seed := flag.Uint64("seed", 42, "fault injection seed")
	parallel := flag.Int("parallel", 0, "sweep workers (0 = GOMAXPROCS)")
	cacheEntries := flag.Int("cache", 0, "results-cache entries (0 = default, negative disables)")
	csvPath := flag.String("csv", "", "write per-request stage timings (CSV) to this file")
	checkCache := flag.Bool("check-cache", false,
		"run the sweep twice and require the second pass ≥90% cache hits with an identical table")
	flag.Parse()

	var scale workload.Scale
	switch *scaleFlag {
	case "tiny":
		scale = workload.Tiny
	case "small":
		scale = workload.Small
	case "medium":
		scale = workload.Medium
	default:
		fatal(fmt.Errorf("unknown scale %q", *scaleFlag))
	}
	w, err := bench.ByName(*benchName)
	if err != nil {
		fatal(err)
	}
	var nodeCounts []int
	for _, s := range strings.Split(*nodesFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			fatal(fmt.Errorf("bad node count %q", s))
		}
		nodeCounts = append(nodeCounts, n)
	}

	// The sweep batch: per node count a fault-free base run and a
	// complete-replication run, in table-row order.
	cm := workload.DefaultCostModel()
	var reqs []sweep.Request
	for _, nodes := range nodeCounts {
		job := w.BuildJob(scale, nodes, cm)
		cfg := cluster.Config{Nodes: nodes, CoresPerNode: *cores}
		if *rate > 0 {
			cfg.Injector = fault.NewFixedRate(*seed, *rate/2, *rate/2)
		}
		cfgR := cfg
		cfgR.Replicated = cluster.All(len(job.Tasks))
		reqs = append(reqs, sweep.Request{Job: job, Config: cfg}, sweep.Request{Job: job, Config: cfgR})
	}

	eng := sweep.New(sweep.Options{Workers: *parallel, CacheEntries: *cacheEntries})
	resps, err := eng.RunBatch(context.Background(), reqs)
	if err != nil {
		fatal(err)
	}
	table := render(nodeCounts, *cores, resps)
	fmt.Printf("%s at %s scale, complete replication, fault rate %g (%d workers)\n",
		w.Name(), scale, *rate, eng.Workers())
	fmt.Println(table)

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatal(err)
		}
		if err := sweep.WriteMetricsCSV(f, sweep.BatchMetrics(resps)); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}

	if *checkCache {
		before := eng.Stats()
		again, err := eng.RunBatch(context.Background(), reqs)
		if err != nil {
			fatal(err)
		}
		after := eng.Stats()
		hits := after.Hits - before.Hits
		hitRate := 100 * float64(hits) / float64(len(reqs))
		if hitRate < 90 {
			fatal(fmt.Errorf("check-cache: second pass hit %d of %d requests (%.0f%%, need ≥90%%)",
				hits, len(reqs), hitRate))
		}
		if warm := render(nodeCounts, *cores, again); warm != table {
			fatal(fmt.Errorf("check-cache: cached table differs from the first pass\nfirst:\n%s\nsecond:\n%s", table, warm))
		}
		fmt.Printf("check-cache: %d/%d second-pass hits (%.0f%%), tables identical\n", hits, len(reqs), hitRate)
	}
}

// render turns the batch responses (base, replicated per node count) into
// the overhead/speedup table. Bitwise-identical responses render to a
// bitwise-identical string, which is what -check-cache compares.
func render(nodeCounts []int, cores int, resps []sweep.Response) string {
	t := stats.NewTable("nodes", "cores", "base ms", "repl ms", "overhead %",
		"speedup", "reexecs", "sdc", "due")
	var base0 cluster.Result
	for i, nodes := range nodeCounts {
		baseRes, replRes := resps[2*i].Result, resps[2*i+1].Result
		if i == 0 {
			base0 = replRes
		}
		t.AddRow(nodes, nodes*cores,
			baseRes.Makespan.Seconds()*1e3,
			replRes.Makespan.Seconds()*1e3,
			replRes.OverheadPct(baseRes),
			replRes.Speedup(base0),
			replRes.Reexecutions, replRes.SDCDetected, replRes.DUERecovered)
	}
	return t.String()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
