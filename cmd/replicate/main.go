// Command replicate runs the task-replication overhead and scalability
// experiments for a single benchmark on the virtual cluster (the per-
// benchmark view of Figures 4-6):
//
//	replicate -bench nbody -scale small -nodes 4,8,16,32,64 -cores 16 -rate 1e-3
//
// It prints, for each machine size: fault-free and replicated makespans,
// overhead, speedup and recovery activity.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"appfit/internal/bench"
	"appfit/internal/bench/workload"
	"appfit/internal/cluster"
	"appfit/internal/fault"
	"appfit/internal/stats"
)

func main() {
	benchName := flag.String("bench", "stream", "benchmark name")
	scaleFlag := flag.String("scale", "small", "tiny, small or medium")
	nodesFlag := flag.String("nodes", "1", "comma-separated node counts")
	cores := flag.Int("cores", 16, "cores per node")
	rate := flag.Float64("rate", 0, "per-execution fault probability (split evenly DUE/SDC)")
	seed := flag.Uint64("seed", 42, "fault injection seed")
	flag.Parse()

	var scale workload.Scale
	switch *scaleFlag {
	case "tiny":
		scale = workload.Tiny
	case "small":
		scale = workload.Small
	case "medium":
		scale = workload.Medium
	default:
		fatal(fmt.Errorf("unknown scale %q", *scaleFlag))
	}
	w, err := bench.ByName(*benchName)
	if err != nil {
		fatal(err)
	}
	var nodeCounts []int
	for _, s := range strings.Split(*nodesFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			fatal(fmt.Errorf("bad node count %q", s))
		}
		nodeCounts = append(nodeCounts, n)
	}

	cm := workload.DefaultCostModel()
	t := stats.NewTable("nodes", "cores", "base ms", "repl ms", "overhead %",
		"speedup", "reexecs", "sdc", "due")
	var base0 cluster.Result
	for i, nodes := range nodeCounts {
		job := w.BuildJob(scale, nodes, cm)
		cfg := cluster.Config{Nodes: nodes, CoresPerNode: *cores}
		if *rate > 0 {
			cfg.Injector = fault.NewFixedRate(*seed, *rate/2, *rate/2)
		}
		baseRes, err := cluster.Run(job, cfg)
		if err != nil {
			fatal(err)
		}
		cfgR := cfg
		cfgR.Replicated = cluster.All(len(job.Tasks))
		if *rate > 0 {
			cfgR.Injector = fault.NewFixedRate(*seed, *rate/2, *rate/2)
		}
		replRes, err := cluster.Run(job, cfgR)
		if err != nil {
			fatal(err)
		}
		if i == 0 {
			base0 = replRes
		}
		t.AddRow(nodes, nodes**cores,
			baseRes.Makespan.Seconds()*1e3,
			replRes.Makespan.Seconds()*1e3,
			replRes.OverheadPct(baseRes),
			replRes.Speedup(base0),
			replRes.Reexecutions, replRes.SDCDetected, replRes.DUERecovered)
	}
	fmt.Printf("%s at %s scale, complete replication, fault rate %g\n", w.Name(), scale, *rate)
	fmt.Println(t.String())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
