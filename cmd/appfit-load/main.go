// Command appfit-load is the closed-loop multi-tenant load generator for
// appfitd: per tenant it runs a configurable number of worker loops, each
// submitting one request at a time and (optionally) pacing to an offered
// rate, for a fixed duration:
//
//	appfit-load -addr http://127.0.0.1:8080 \
//	    -tenants 'heavy=1/10/0,light=1/1/0' -bench stream -duration 5s
//
// The tenant spec is name=weight/concurrency/rps: weight is informational
// (printed and used by -check-fairness as the expected completion share),
// concurrency is the closed-loop worker count, rps the per-tenant offered
// rate (0 = as fast as the loop turns, i.e. saturation). Each submission
// carries -batch requests (default 1): a deeper batch multiplies the
// tenant's standing backlog and amortizes the HTTP round trip, which is
// what keeps the server — not the client — the bottleneck when checking
// fairness on a small machine. After the run it
// prints per-tenant sustained req/s and p50/p95/p99 end-to-end latency,
// plus the server's own accounting, and optionally:
//
//	-csv FILE             tenant-labeled per-request service metrics
//	-check-completions    exit non-zero unless every tenant completed work
//	-check-fairness F     exit non-zero if any tenant's completion share
//	                      strays more than a factor F from its weight share
//	                      (only meaningful when the server is saturated)
//
// Rejected submissions (rate-limited, queue full) are counted, not
// retried: admission control is the back-pressure under test.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"appfit/internal/serve"
	"appfit/internal/serve/httpapi"
	"appfit/internal/stats"
)

// loadTenant is one tenant's generator config: spec name=weight/conc/rps.
type loadTenant struct {
	name   string
	weight int
	conc   int
	rps    float64
}

// tenantResult accumulates one tenant's observations across its workers.
type tenantResult struct {
	mu        sync.Mutex
	completed int
	failed    int
	rejected  int
	latencies []float64 // seconds end-to-end per completed request
	metrics   []serve.Metrics
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "appfitd base URL")
	tenantsFlag := flag.String("tenants", "default=1/4/0",
		"load spec: name=weight/concurrency/rps,... (rps 0 = closed-loop saturation)")
	benchName := flag.String("bench", "stream", "benchmark every request names")
	scale := flag.String("scale", "tiny", "workload scale")
	nodes := flag.Int("nodes", 1, "simulated nodes per request")
	cores := flag.Int("cores", 16, "cores per node")
	rate := flag.Float64("rate", 0, "per-execution fault probability")
	seed := flag.Uint64("seed", 42, "fault injection seed")
	vary := flag.Bool("vary", true,
		"vary the fault seed per request so requests are distinct jobs, not one cached result")
	batch := flag.Int("batch", 1, "requests per submission (a deeper batch keeps the tenant's queue backlogged)")
	duration := flag.Duration("duration", 5*time.Second, "load duration")
	csvPath := flag.String("csv", "", "write tenant-labeled service metrics (CSV) to this file")
	checkCompletions := flag.Bool("check-completions", false,
		"exit non-zero unless every tenant completed at least one request")
	checkFairness := flag.Float64("check-fairness", 0,
		"exit non-zero if a tenant's completion share is off its weight share by more than this factor")
	flag.Parse()

	tenants, err := parseLoadTenants(*tenantsFlag)
	if err != nil {
		fatal(err)
	}
	if *batch < 1 {
		fatal(fmt.Errorf("-batch %d: want at least 1", *batch))
	}
	totalConc := 0
	for _, t := range tenants {
		totalConc += t.conc
	}
	// One persistent connection per worker: the default transport keeps
	// only 2 idle conns per host, so a 40-worker closed loop would dial a
	// fresh connection for nearly every request and measure TCP churn
	// instead of the service.
	transport := http.DefaultTransport.(*http.Transport).Clone()
	transport.MaxIdleConns = totalConc + 4
	transport.MaxIdleConnsPerHost = totalConc + 4
	client := &httpapi.Client{
		Base: strings.TrimSuffix(*addr, "/"),
		HTTP: &http.Client{Transport: transport, Timeout: 5 * time.Minute},
	}
	if !client.Healthy(context.Background()) {
		fatal(fmt.Errorf("server at %s is not healthy", *addr))
	}

	// Varying the seed makes every request a distinct simulation (distinct
	// cache key): with -vary=false the run measures the cached-hit path
	// instead of sustained simulation throughput.
	results := make(map[string]*tenantResult, len(tenants))
	for _, t := range tenants {
		results[t.name] = &tenantResult{}
	}
	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()
	var wg sync.WaitGroup
	var reqSeq struct {
		mu sync.Mutex
		n  uint64
	}
	nextSeed := func() uint64 {
		if !*vary {
			return *seed
		}
		reqSeq.mu.Lock()
		defer reqSeq.mu.Unlock()
		reqSeq.n++
		return *seed + reqSeq.n
	}
	start := time.Now()
	for _, t := range tenants {
		res := results[t.name]
		interval := time.Duration(0)
		if t.rps > 0 {
			// Pace each worker so the tenant offers rps requests/s total;
			// a submission carries -batch requests.
			interval = time.Duration(float64(time.Second) * float64(t.conc*(*batch)) / t.rps)
		}
		for w := 0; w < t.conc; w++ {
			wg.Add(1)
			go func(t loadTenant) {
				defer wg.Done()
				for ctx.Err() == nil {
					specs := make([]httpapi.JobSpec, *batch)
					for i := range specs {
						specs[i] = httpapi.JobSpec{
							Bench: *benchName, Scale: *scale,
							Nodes: *nodes, Cores: *cores,
							Rate: orVaryRate(*rate), Seed: nextSeed(),
						}
					}
					t0 := time.Now()
					resp, err := client.Submit(ctx, t.name, specs)
					lat := time.Since(t0)
					res.mu.Lock()
					switch {
					case err == nil:
						// One end-to-end latency sample per round trip: with
						// -batch > 1 the percentiles are batch latencies.
						res.latencies = append(res.latencies, lat.Seconds())
						for _, r := range resp.Results {
							if r.Err == "" {
								res.completed++
								res.metrics = append(res.metrics, r.Metrics)
							} else {
								res.failed++
							}
						}
					case isAdmission(err):
						// All-or-nothing admission: the whole batch bounced.
						res.rejected += len(specs)
					case ctx.Err() != nil:
						// Run over: an in-flight batch cut off by the
						// deadline is neither failed nor rejected.
					default:
						res.failed += len(specs)
					}
					res.mu.Unlock()
					if interval > 0 {
						select {
						case <-time.After(interval):
						case <-ctx.Done():
						}
					}
				}
			}(t)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	table := stats.NewTable("tenant", "weight", "conc", "completed", "rejected", "failed",
		"req/s", "p50 ms", "p95 ms", "p99 ms")
	totalCompleted := 0
	for _, t := range tenants {
		res := results[t.name]
		rps := float64(res.completed) / elapsed.Seconds()
		table.AddRow(t.name, t.weight, t.conc, res.completed, res.rejected, res.failed,
			rps,
			stats.Percentile(res.latencies, 50)*1e3,
			stats.Percentile(res.latencies, 95)*1e3,
			stats.Percentile(res.latencies, 99)*1e3)
		totalCompleted += res.completed
	}
	fmt.Printf("appfit-load: %s for %v against %s\n", *benchName, elapsed.Round(time.Millisecond), *addr)
	fmt.Println(table)

	if st, err := client.Stats(context.Background()); err == nil {
		fmt.Printf("server: queued %d inflight %d, engine %d requests / %d cache hits\n",
			st.Queued, st.Inflight, st.Engine.Requests, st.Engine.Hits)
		if err := st.Accounting(); err != nil {
			fatal(err)
		}
	} else {
		fmt.Fprintf(os.Stderr, "appfit-load: stats: %v\n", err)
	}

	if *csvPath != "" {
		var all []serve.Metrics
		for _, t := range tenants {
			all = append(all, results[t.name].metrics...)
		}
		f, err := os.Create(*csvPath)
		if err != nil {
			fatal(err)
		}
		if err := serve.WriteMetricsCSV(f, all); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}

	if *checkCompletions {
		for _, t := range tenants {
			if results[t.name].completed == 0 {
				fatal(fmt.Errorf("check-completions: tenant %q completed no requests", t.name))
			}
		}
		fmt.Printf("check-completions: all %d tenants completed work\n", len(tenants))
	}
	if *checkFairness > 0 {
		if err := fairness(tenants, results, totalCompleted, *checkFairness); err != nil {
			fatal(err)
		}
	}
}

// fairness checks each tenant's completion share against its weight share:
// the ratio share/weightShare must stay within [1/factor, factor]. Only
// meaningful when the server (not the offered load) is the bottleneck.
func fairness(tenants []loadTenant, results map[string]*tenantResult, total int, factor float64) error {
	if total == 0 {
		return fmt.Errorf("check-fairness: no completions at all")
	}
	weightSum := 0
	for _, t := range tenants {
		weightSum += t.weight
	}
	for _, t := range tenants {
		share := float64(results[t.name].completed) / float64(total)
		want := float64(t.weight) / float64(weightSum)
		ratio := share / want
		if ratio < 1/factor || ratio > factor {
			return fmt.Errorf("check-fairness: tenant %q completed share %.3f vs weight share %.3f (ratio %.2f outside [%.2f, %.2f])",
				t.name, share, want, ratio, 1/factor, factor)
		}
		fmt.Printf("check-fairness: tenant %-10s share %.3f / weight share %.3f (ratio %.2f)\n",
			t.name, share, want, ratio)
	}
	return nil
}

// orVaryRate keeps requests cacheable but distinct: with a zero fault rate
// the per-request seed would not enter the cache key (no injector), so a
// tiny fixed rate is injected whenever the caller asked for none. The
// simulation outcome is virtually always fault-free at 1e-9.
func orVaryRate(rate float64) float64 {
	if rate > 0 {
		return rate
	}
	return 2e-9
}

func isAdmission(err error) bool { return errors.Is(err, serve.ErrAdmission) }

// parseLoadTenants parses name=weight/concurrency/rps entries.
func parseLoadTenants(spec string) ([]loadTenant, error) {
	var out []loadTenant
	seen := map[string]bool{}
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		t := loadTenant{weight: 1, conc: 1}
		name, rest, hasParams := strings.Cut(entry, "=")
		t.name = strings.TrimSpace(name)
		if t.name == "" {
			return nil, fmt.Errorf("load spec %q: empty tenant name", entry)
		}
		if seen[t.name] {
			return nil, fmt.Errorf("load spec: duplicate tenant %q", t.name)
		}
		seen[t.name] = true
		if hasParams {
			parts := strings.Split(rest, "/")
			if len(parts) > 3 {
				return nil, fmt.Errorf("load spec %q: want name=weight[/concurrency[/rps]]", entry)
			}
			for i, p := range parts {
				p = strings.TrimSpace(p)
				if p == "" {
					continue
				}
				switch i {
				case 0:
					w, err := strconv.Atoi(p)
					if err != nil || w < 1 {
						return nil, fmt.Errorf("load spec %q: bad weight %q", entry, p)
					}
					t.weight = w
				case 1:
					c, err := strconv.Atoi(p)
					if err != nil || c < 1 {
						return nil, fmt.Errorf("load spec %q: bad concurrency %q", entry, p)
					}
					t.conc = c
				case 2:
					r, err := strconv.ParseFloat(p, 64)
					if err != nil || r < 0 {
						return nil, fmt.Errorf("load spec %q: bad rps %q", entry, p)
					}
					t.rps = r
				}
			}
		}
		out = append(out, t)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("load spec %q names no tenants", spec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "appfit-load:", err)
	os.Exit(1)
}
