// Command experiments regenerates the paper's tables and figures:
//
//	experiments table1              Table I benchmark inventory
//	experiments fig1                dataflow vs fork-join (Figure 1)
//	experiments fig2                replication walk-through (Figure 2)
//	experiments fig3                App_FIT selective replication (Figure 3)
//	experiments fig4                complete-replication overheads (Figure 4)
//	experiments fig5                shared-memory scalability (Figure 5)
//	experiments fig6                distributed scalability (Figure 6)
//	experiments ablation [bench]    selection-policy ablation
//	experiments sweep [bench]       threshold-sensitivity sweep
//	experiments sparecores [bench]  overhead vs spare capacity
//	experiments reliability [bench] corrupted-result counts per policy
//	experiments topology            flat vs hierarchical collectives on the placed fabric
//	experiments placement           random vs block vs optimized vs annealed rank→node placement
//	experiments kernels             distributed kernels: tree vs Rabenseifner, cholesky flat vs hier, placement
//	experiments all                 everything above
//
// Flags: -scale tiny|small|medium, -workers N, -repeats N, plus the sweep
// engine's -parallel (simulation workers) and -cache (results-cache
// entries). One engine serves every figure, so runs shared between figures
// (and `all`'s repeated sub-experiments) hit the cache instead of
// re-simulating; a failed simulation exits non-zero naming the request.
package main

import (
	"flag"
	"fmt"
	"os"

	"appfit/internal/bench/workload"
	"appfit/internal/experiments"
	"appfit/internal/sweep"
)

func main() {
	scaleFlag := flag.String("scale", "small", "problem scale: tiny, small or medium")
	workers := flag.Int("workers", 4, "worker threads for real-runtime experiments")
	repeats := flag.Int("repeats", 3, "repetitions for averaged experiments (paper uses 10)")
	benchName := flag.String("bench", "cholesky", "benchmark for ablation/sweep/sparecores")
	parallel := flag.Int("parallel", 0, "sweep workers for simulator experiments (0 = GOMAXPROCS)")
	cacheEntries := flag.Int("cache", 0, "results-cache entries (0 = default, negative disables)")
	flag.Parse()

	eng := sweep.New(sweep.Options{Workers: *parallel, CacheEntries: *cacheEntries})

	var scale workload.Scale
	switch *scaleFlag {
	case "tiny":
		scale = workload.Tiny
	case "small":
		scale = workload.Small
	case "medium":
		scale = workload.Medium
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	cmd := flag.Arg(0)
	if cmd == "" {
		cmd = "all"
	}
	run := func(name string) {
		switch name {
		case "table1":
			fmt.Println("=== Table I ===")
			fmt.Println(experiments.Table1(scale))
		case "fig1":
			fmt.Println("=== Figure 1: dataflow vs fork-join ===")
			fmt.Println(experiments.Fig1(eng))
		case "fig2":
			fmt.Println("=== Figure 2: replication design walk-through ===")
			fmt.Println(experiments.Fig2())
		case "fig3":
			fmt.Println("=== Figure 3: App_FIT selective replication ===")
			_, s := experiments.Fig3(experiments.Fig3Config{
				Scale: scale, Workers: *workers, Repeats: *repeats,
			})
			fmt.Println(s)
		case "fig4":
			fmt.Println("=== Figure 4: complete replication overheads ===")
			_, s, err := experiments.Fig4(eng, scale)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Println(s)
		case "fig5":
			fmt.Println("=== Figure 5: shared-memory scalability ===")
			_, s, err := experiments.Fig5(eng, scale)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Println(s)
		case "fig6":
			fmt.Println("=== Figure 6: distributed scalability ===")
			_, s, err := experiments.Fig6(eng, scale)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Println(s)
		case "ablation":
			fmt.Println("=== Ablation: selection policies ===")
			_, s, err := experiments.Ablation(*benchName, scale)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Println(s)
		case "sweep":
			fmt.Println("=== Threshold sensitivity sweep ===")
			s, err := experiments.ThresholdSweep(*benchName, scale)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Println(s)
		case "reliability":
			fmt.Println("=== Reliability under accelerated fault injection ===")
			_, s, err := experiments.Reliability(*benchName, scale, *repeats*5, 0)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Println(s)
		case "sparecores":
			fmt.Println("=== Overhead vs spare capacity ===")
			s, err := experiments.SpareCoreSweep(eng, *benchName, scale)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Println(s)
		case "topology":
			fmt.Println("=== Topology: flat vs hierarchical collectives (64 ranks, 16/node) ===")
			_, s, err := experiments.TopologyTable(64, 16, 4096)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Println(s)
		case "placement":
			fmt.Println("=== Placement search: random vs block vs optimized vs annealed (64 ranks, 16/node) ===")
			_, s, err := experiments.PlacementTable(eng, 64, 16, 4096, 1)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Println(s)
		case "kernels":
			fmt.Println("=== Distributed kernels: tree vs Rabenseifner, cholesky flat vs hier, placement (64 ranks, 16/node) ===")
			_, s, err := experiments.KernelsTable(eng, 64, 16, 32768, 1)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Println(s)
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			os.Exit(2)
		}
	}
	if cmd == "all" {
		for _, n := range []string{"table1", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "ablation", "sweep", "sparecores", "reliability", "topology", "placement", "kernels"} {
			run(n)
		}
		st := eng.Stats()
		fmt.Printf("sweep engine: %d runs, %d hits (%.0f%%), %d coalesced, %d cached entries\n",
			st.Requests, st.Hits, st.HitRate(), st.Coalesced, st.Entries)
		return
	}
	run(cmd)
}
