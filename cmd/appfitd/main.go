// Command appfitd is the long-running multi-tenant appfit daemon: a sweep
// engine behind admission control and deficit-round-robin fair queueing
// (internal/serve), exposed over HTTP/JSON (internal/serve/httpapi):
//
//	appfitd -addr 127.0.0.1:0 -tenants 'alpha=3,beta=1/100' -workers 4
//
// On startup it prints one line naming the bound address —
// "appfitd: listening on http://HOST:PORT" — which harnesses (appfit-load,
// scripts/check_serve.sh) parse to find a :0-bound daemon. SIGTERM/SIGINT
// triggers the graceful drain: in-flight and queued requests finish, new
// submissions are rejected with 503, the HTTP server shuts down, and the
// final per-tenant accounting prints to stderr. The exit code is non-zero
// if the drain times out or the admission books do not balance
// (admitted != completed + failed), so a supervisor can spot lost work.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"appfit/internal/serve"
	"appfit/internal/serve/httpapi"
	"appfit/internal/sweep"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
	tenantsFlag := flag.String("tenants", "default=1",
		"tenant spec: name=weight[/rate[/burst[/cap]]],...")
	workers := flag.Int("workers", 0, "service workers (0 = GOMAXPROCS)")
	cacheEntries := flag.Int("cache", 0, "results-cache entries (0 = default, negative disables)")
	quantum := flag.Int("quantum", 0, "DRR quantum in task-cost units (0 = default)")
	drainTimeout := flag.Duration("drain-timeout", time.Minute, "graceful drain deadline on shutdown")
	flag.Parse()

	tenants, err := serve.ParseTenants(*tenantsFlag)
	if err != nil {
		fatal(err)
	}
	srv, err := serve.New(serve.Options{
		Tenants:       tenants,
		EngineOptions: sweep.Options{Workers: *workers, CacheEntries: *cacheEntries},
		Workers:       *workers,
		Quantum:       *quantum,
	})
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("appfitd: listening on http://%s\n", ln.Addr())
	for _, tc := range tenants {
		fmt.Printf("appfitd: tenant %s weight %d rate %s queue cap %d\n",
			tc.Name, max(tc.Weight, 1), rateString(tc), defaultCap(tc.QueueCap))
	}

	hs := &http.Server{Handler: httpapi.NewHandler(srv)}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "appfitd: %s, draining\n", s)
	case err := <-serveErr:
		fatal(err)
	}

	// Drain order matters: the service rejects new admissions first (so
	// /submit answers 503 draining, not connection refused), finishes the
	// admitted work, then the HTTP listener closes once no request is
	// blocked in a handler.
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	code := 0
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "appfitd: %v\n", err)
		code = 1
	}
	if err := hs.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "appfitd: http shutdown: %v\n", err)
		code = 1
	}

	st := srv.Stats()
	fmt.Fprintf(os.Stderr, "appfitd: final accounting (cache hits %d / %d requests)\n",
		st.Engine.Hits, st.Engine.Requests)
	for _, t := range st.Tenants {
		fmt.Fprintf(os.Stderr, "appfitd:   %-12s admitted %-6d completed %-6d failed %-4d rejected %d\n",
			t.Tenant, t.Admitted, t.Completed, t.Failed, t.Rejected)
	}
	if err := st.Accounting(); err != nil {
		fmt.Fprintf(os.Stderr, "appfitd: %v\n", err)
		code = 1
	}
	os.Exit(code)
}

// defaultCap mirrors the serve-side queue-cap default for the banner.
func defaultCap(c int) int {
	if c <= 0 {
		return 1024
	}
	return c
}

func rateString(tc serve.TenantConfig) string {
	if tc.Rate <= 0 {
		return "unlimited"
	}
	return fmt.Sprintf("%g/s", tc.Rate)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "appfitd:", err)
	os.Exit(1)
}
