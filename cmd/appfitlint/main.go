// Command appfitlint runs the repo's project-specific static-analysis
// suite (internal/lint) over the named package patterns — ./... by
// default — and exits non-zero on any finding. It is the `make check-lint`
// gate: the compile-time counterpart of the race detector for the repo's
// determinism, locking and error contracts (DESIGN.md §14).
//
//	go run ./cmd/appfitlint ./...
//	go run ./cmd/appfitlint -run maporder,simdet ./internal/sweep
//
// Deliberate contract exceptions are waived in source with a
// `//lint:<analyzer> <reason>` comment on the flagged line or the line
// above; the waiver is the documented escape hatch, so a clean run means
// every exception is visible and justified where it happens.
//
// Exit codes: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"appfit/internal/lint"
	"appfit/internal/lint/analysis"
	"appfit/internal/lint/driver"
)

func main() {
	runFlag := flag.String("run", "", "comma-separated analyzer names to run (default: the full suite)")
	flag.Parse()

	analyzers := lint.Analyzers()
	if *runFlag != "" {
		want := map[string]bool{}
		for _, name := range strings.Split(*runFlag, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var sel []*analysis.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				sel = append(sel, a)
				delete(want, a.Name)
			}
		}
		for name := range want { //lint:maporder usage errors, at most a handful
			fmt.Fprintf(os.Stderr, "appfitlint: unknown analyzer %q\n", name)
		}
		if len(want) > 0 || len(sel) == 0 {
			os.Exit(2)
		}
		analyzers = sel
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := driver.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "appfitlint: %v\n", err)
		os.Exit(2)
	}
	findings := 0
	for _, pkg := range pkgs {
		diags, err := driver.Run(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "appfitlint: %v\n", err)
			os.Exit(2)
		}
		for _, d := range diags {
			fmt.Println(d)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "appfitlint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}
