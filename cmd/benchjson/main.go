// Command benchjson converts `go test -bench` output on stdin into a JSON
// baseline file, so `make bench` can record the repo's perf trajectory
// (BENCH_scale.json) in a diffable, machine-readable form. Input lines are
// echoed to stdout unchanged, so the human-readable run stays visible.
//
//	go test -run='^$' -bench=. -benchmem ./internal/bench/scale | \
//	    go run ./cmd/benchjson -suite scale -out BENCH_scale.json
//
// With -compare it instead diffs two baseline files and exits non-zero
// when any gated metric of a benchmark present in both regressed beyond
// its unit's threshold — the CI guard `make bench-compare` runs against
// the committed baseline:
//
//	go run ./cmd/benchjson -compare BENCH_scale.json BENCH_scale.new.json
//
// Gated units and their thresholds come from -gates, default
// "ns/op=25,vus/op=1,p99/op=25,+req/s=25": wall time absorbs scheduler
// noise with a wide margin, while vus/op — the Sim transport's virtual
// link-occupancy makespan, the headline metric of the topology and
// placement work — is deterministic for a fixed algorithm, so even a
// small regression there is a real routing change, not noise. p99/op is
// the appfit service's tail latency in ns, gated like ns/op. A unit
// prefixed with "+" is higher-is-better (req/s, the service's sustained
// throughput): there a regression is the value *dropping* beyond the
// threshold, not rising. Units not listed (B/op, allocs/op, custom
// counters) are recorded but never gate. Units named by -info (default
// "hit%", the sweep engine's cache hit rate) are additionally printed in
// the comparison so their drift stays visible, but they never gate
// either — a hit rate is a property of the request mix, not a cost.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the benchmark's full name including sub-benchmark path and
	// the -N GOMAXPROCS suffix go test appends, e.g.
	// "DirectHerd/sharded/parked=255-8".
	Name       string `json:"name"`
	Iterations int64  `json:"iterations"`
	// Metrics maps unit → value for every "value unit" pair on the line:
	// ns/op, B/op, allocs/op and any custom b.ReportMetric units.
	Metrics map[string]float64 `json:"metrics"`
}

// Baseline is the file layout of BENCH_scale.json. Goos/Goarch/Pkg/CPU echo
// the environment lines go test prints before the results.
type Baseline struct {
	Suite      string      `json:"suite"`
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	suite := flag.String("suite", "scale", "suite name recorded in the JSON")
	out := flag.String("out", "", "output file (default stdout only)")
	compare := flag.Bool("compare", false, "compare two baseline files (old new) instead of parsing stdin")
	gatesFlag := flag.String("gates", "ns/op=25,vus/op=1,p99/op=25,+req/s=25", "with -compare: gated units and their regression thresholds in percent, as unit=pct[,unit=pct...]; a + prefix marks the unit higher-is-better")
	infoFlag := flag.String("info", "hit%", "with -compare: comma-separated units printed for information but never gated")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two files: old.json new.json")
			os.Exit(2)
		}
		gates, err := parseGates(*gatesFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(2)
		}
		os.Exit(compareBaselines(os.Stdout, flag.Arg(0), flag.Arg(1), gates, parseInfo(*infoFlag)))
	}

	base := Baseline{Suite: *suite}
	failed := false
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		switch {
		case strings.HasPrefix(line, "goos: "):
			base.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			base.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			base.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			base.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseLine(line); ok {
				base.Benchmarks = append(base.Benchmarks, b)
			}
		case strings.HasPrefix(line, "FAIL") || strings.HasPrefix(line, "--- FAIL"):
			failed = true
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read stdin: %v\n", err)
		os.Exit(1)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchjson: benchmark run FAILed; not writing baseline")
		os.Exit(1)
	}
	if len(base.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines seen on stdin")
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(base.Benchmarks), *out)
}

// gate is one unit's regression policy: the threshold in percent and the
// direction that counts as worse (costs per op regress upward, a "+unit"
// throughput regresses downward).
type gate struct {
	pct          float64
	higherBetter bool
}

// parseGates parses a "unit=pct[,unit=pct...]" spec into the gated-unit
// threshold table; a "+" prefix on the unit marks it higher-is-better.
func parseGates(spec string) (map[string]gate, error) {
	gates := make(map[string]gate)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		g := gate{}
		if strings.HasPrefix(part, "+") {
			g.higherBetter = true
			part = part[1:]
		}
		eq := strings.LastIndex(part, "=")
		if eq <= 0 || eq == len(part)-1 {
			return nil, fmt.Errorf("malformed -gates entry %q (want unit=pct)", part)
		}
		pct, err := strconv.ParseFloat(part[eq+1:], 64)
		if err != nil || pct < 0 {
			return nil, fmt.Errorf("malformed -gates threshold in %q", part)
		}
		g.pct = pct
		gates[part[:eq]] = g
	}
	if len(gates) == 0 {
		return nil, fmt.Errorf("-gates %q names no units", spec)
	}
	return gates, nil
}

// parseInfo parses the -info unit list; an empty spec disables info lines.
func parseInfo(spec string) map[string]bool {
	info := make(map[string]bool)
	for _, part := range strings.Split(spec, ",") {
		if part = strings.TrimSpace(part); part != "" {
			info[part] = true
		}
	}
	return info
}

// compareBaselines diffs new against old and returns the exit code: 0 when
// every gated metric of every benchmark present in both stayed within its
// unit's threshold, 1 when any regressed beyond it — upward for cost
// units, downward for higher-is-better ones. Benchmarks or units that
// appear on only one side are reported but not failed — suites grow and
// rotate; only a measured regression of a still-recorded metric should
// gate. Units in info are printed alongside when both sides record them,
// purely for the reader; they never affect the exit code.
func compareBaselines(out io.Writer, oldPath, newPath string, gates map[string]gate, info map[string]bool) int {
	load := func(path string) (map[string]map[string]float64, bool) {
		raw, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			return nil, false
		}
		var b Baseline
		if err := json.Unmarshal(raw, &b); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", path, err)
			return nil, false
		}
		m := make(map[string]map[string]float64, len(b.Benchmarks))
		for _, bm := range b.Benchmarks {
			m[bm.Name] = bm.Metrics
		}
		return m, true
	}
	oldB, ok := load(oldPath)
	if !ok {
		return 2
	}
	newB, ok := load(newPath)
	if !ok {
		return 2
	}
	units := make([]string, 0, len(gates))
	for u := range gates {
		units = append(units, u)
	}
	sort.Strings(units)
	names := make([]string, 0, len(oldB))
	for name := range oldB {
		names = append(names, name)
	}
	sort.Strings(names)
	regressed, compared := 0, 0
	for _, name := range names {
		om := oldB[name]
		nm, ok := newB[name]
		if !ok {
			fmt.Fprintf(out, "MISSING  %-60s (in %s only)\n", name, oldPath)
			continue
		}
		for _, unit := range units {
			ov, okO := om[unit]
			nv, okN := nm[unit]
			if !okO || !okN {
				// A gated unit recorded on only one side cannot gate, but
				// it must not vanish silently either: a benchmark that
				// stops reporting vus/op is exactly how a guarded metric
				// would lose its guard unnoticed.
				if okO != okN {
					side := newPath
					if okO {
						side = oldPath
					}
					fmt.Fprintf(out, "MISSING  %-60s %s (in %s only)\n", name, unit, side)
				}
				continue
			}
			compared++
			g := gates[unit]
			pct := 0.0
			if ov > 0 {
				pct = (nv - ov) / ov * 100
			}
			bad := ov > 0 && pct > g.pct
			limit := ""
			if g.higherBetter {
				// Throughput: the regression direction inverts — gate on
				// the value dropping beyond the threshold.
				bad = ov > 0 && pct < -g.pct
				limit = fmt.Sprintf("%+.1f%% < -%.0f%%", pct, g.pct)
			} else {
				limit = fmt.Sprintf("%+.1f%% > %.0f%%", pct, g.pct)
			}
			if bad {
				regressed++
				fmt.Fprintf(out, "REGRESS  %-60s %12.1f -> %12.1f %s (%s)\n",
					name, ov, nv, unit, limit)
			} else {
				fmt.Fprintf(out, "ok       %-60s %12.1f -> %12.1f %s (%+.1f%%)\n", name, ov, nv, unit, pct)
			}
		}
		infoUnits := make([]string, 0, len(info))
		for u := range info {
			infoUnits = append(infoUnits, u)
		}
		sort.Strings(infoUnits)
		for _, unit := range infoUnits {
			ov, okO := om[unit]
			nv, okN := nm[unit]
			if okO && okN {
				fmt.Fprintf(out, "info     %-60s %12.1f -> %12.1f %s (not gated)\n", name, ov, nv, unit)
			}
		}
	}
	added := make([]string, 0, len(newB))
	for name := range newB {
		if _, ok := oldB[name]; !ok {
			added = append(added, name)
		}
	}
	sort.Strings(added)
	for _, name := range added {
		fmt.Fprintf(out, "NEW      %-60s\n", name)
	}
	if regressed > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d metric(s) regressed beyond their unit thresholds\n", regressed)
		return 1
	}
	fmt.Fprintf(out, "benchjson: no regression across %d gated metric(s) of %d benchmark(s)\n", compared, len(names))
	return 0
}

// parseLine parses one `BenchmarkName-N  iters  v1 u1  v2 u2 ...` line.
func parseLine(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || len(f)%2 != 0 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{
		Name:       strings.TrimPrefix(f[0], "Benchmark"),
		Iterations: iters,
		Metrics:    make(map[string]float64, (len(f)-2)/2),
	}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[f[i+1]] = v
	}
	return b, true
}
