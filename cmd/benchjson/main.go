// Command benchjson converts `go test -bench` output on stdin into a JSON
// baseline file, so `make bench` can record the repo's perf trajectory
// (BENCH_scale.json) in a diffable, machine-readable form. Input lines are
// echoed to stdout unchanged, so the human-readable run stays visible.
//
//	go test -run='^$' -bench=. -benchmem ./internal/bench/scale | \
//	    go run ./cmd/benchjson -suite scale -out BENCH_scale.json
//
// With -compare it instead diffs two baseline files and exits non-zero
// when any benchmark's ns/op regressed beyond -threshold percent — the CI
// guard `make bench-compare` runs against the committed baseline:
//
//	go run ./cmd/benchjson -compare BENCH_scale.json BENCH_scale.new.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the benchmark's full name including sub-benchmark path and
	// the -N GOMAXPROCS suffix go test appends, e.g.
	// "DirectHerd/sharded/parked=255-8".
	Name       string `json:"name"`
	Iterations int64  `json:"iterations"`
	// Metrics maps unit → value for every "value unit" pair on the line:
	// ns/op, B/op, allocs/op and any custom b.ReportMetric units.
	Metrics map[string]float64 `json:"metrics"`
}

// Baseline is the file layout of BENCH_scale.json. Goos/Goarch/Pkg/CPU echo
// the environment lines go test prints before the results.
type Baseline struct {
	Suite      string      `json:"suite"`
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	suite := flag.String("suite", "scale", "suite name recorded in the JSON")
	out := flag.String("out", "", "output file (default stdout only)")
	compare := flag.Bool("compare", false, "compare two baseline files (old new) instead of parsing stdin")
	threshold := flag.Float64("threshold", 25, "with -compare: fail on ns/op regressions beyond this percent")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two files: old.json new.json")
			os.Exit(2)
		}
		os.Exit(compareBaselines(flag.Arg(0), flag.Arg(1), *threshold))
	}

	base := Baseline{Suite: *suite}
	failed := false
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		switch {
		case strings.HasPrefix(line, "goos: "):
			base.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			base.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			base.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			base.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseLine(line); ok {
				base.Benchmarks = append(base.Benchmarks, b)
			}
		case strings.HasPrefix(line, "FAIL") || strings.HasPrefix(line, "--- FAIL"):
			failed = true
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read stdin: %v\n", err)
		os.Exit(1)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchjson: benchmark run FAILed; not writing baseline")
		os.Exit(1)
	}
	if len(base.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines seen on stdin")
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(base.Benchmarks), *out)
}

// compareBaselines diffs new against old and returns the exit code: 0 when
// every benchmark present in both stayed within threshold percent of its
// old ns/op, 1 when any regressed beyond it. Benchmarks that appear on only
// one side are reported but not failed — suites grow and rotate; only a
// measured regression of a still-existing benchmark should gate.
func compareBaselines(oldPath, newPath string, threshold float64) int {
	load := func(path string) (map[string]float64, bool) {
		raw, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			return nil, false
		}
		var b Baseline
		if err := json.Unmarshal(raw, &b); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", path, err)
			return nil, false
		}
		m := make(map[string]float64, len(b.Benchmarks))
		for _, bm := range b.Benchmarks {
			if v, ok := bm.Metrics["ns/op"]; ok {
				m[bm.Name] = v
			}
		}
		return m, true
	}
	oldNs, ok := load(oldPath)
	if !ok {
		return 2
	}
	newNs, ok := load(newPath)
	if !ok {
		return 2
	}
	names := make([]string, 0, len(oldNs))
	for name := range oldNs {
		names = append(names, name)
	}
	sort.Strings(names)
	regressed := 0
	for _, name := range names {
		ov := oldNs[name]
		nv, ok := newNs[name]
		if !ok {
			fmt.Printf("MISSING  %-60s (in %s only)\n", name, oldPath)
			continue
		}
		pct := (nv - ov) / ov * 100
		switch {
		case ov > 0 && pct > threshold:
			regressed++
			fmt.Printf("REGRESS  %-60s %12.1f -> %12.1f ns/op (%+.1f%% > %.0f%%)\n", name, ov, nv, pct, threshold)
		default:
			fmt.Printf("ok       %-60s %12.1f -> %12.1f ns/op (%+.1f%%)\n", name, ov, nv, pct)
		}
	}
	for name := range newNs {
		if _, ok := oldNs[name]; !ok {
			fmt.Printf("NEW      %-60s %12.1f ns/op\n", name, newNs[name])
		}
	}
	if regressed > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed beyond %.0f%%\n", regressed, threshold)
		return 1
	}
	fmt.Printf("benchjson: no regression beyond %.0f%% across %d benchmark(s)\n", threshold, len(names))
	return 0
}

// parseLine parses one `BenchmarkName-N  iters  v1 u1  v2 u2 ...` line.
func parseLine(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || len(f)%2 != 0 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{
		Name:       strings.TrimPrefix(f[0], "Benchmark"),
		Iterations: iters,
		Metrics:    make(map[string]float64, (len(f)-2)/2),
	}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[f[i+1]] = v
	}
	return b, true
}
