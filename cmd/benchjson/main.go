// Command benchjson converts `go test -bench` output on stdin into a JSON
// baseline file, so `make bench` can record the repo's perf trajectory
// (BENCH_scale.json) in a diffable, machine-readable form. Input lines are
// echoed to stdout unchanged, so the human-readable run stays visible.
//
//	go test -run='^$' -bench=. -benchmem ./internal/bench/scale | \
//	    go run ./cmd/benchjson -suite scale -out BENCH_scale.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the benchmark's full name including sub-benchmark path and
	// the -N GOMAXPROCS suffix go test appends, e.g.
	// "DirectHerd/sharded/parked=255-8".
	Name       string `json:"name"`
	Iterations int64  `json:"iterations"`
	// Metrics maps unit → value for every "value unit" pair on the line:
	// ns/op, B/op, allocs/op and any custom b.ReportMetric units.
	Metrics map[string]float64 `json:"metrics"`
}

// Baseline is the file layout of BENCH_scale.json. Goos/Goarch/Pkg/CPU echo
// the environment lines go test prints before the results.
type Baseline struct {
	Suite      string      `json:"suite"`
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	suite := flag.String("suite", "scale", "suite name recorded in the JSON")
	out := flag.String("out", "", "output file (default stdout only)")
	flag.Parse()

	base := Baseline{Suite: *suite}
	failed := false
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		switch {
		case strings.HasPrefix(line, "goos: "):
			base.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			base.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			base.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			base.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseLine(line); ok {
				base.Benchmarks = append(base.Benchmarks, b)
			}
		case strings.HasPrefix(line, "FAIL") || strings.HasPrefix(line, "--- FAIL"):
			failed = true
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read stdin: %v\n", err)
		os.Exit(1)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchjson: benchmark run FAILed; not writing baseline")
		os.Exit(1)
	}
	if len(base.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines seen on stdin")
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(base.Benchmarks), *out)
}

// parseLine parses one `BenchmarkName-N  iters  v1 u1  v2 u2 ...` line.
func parseLine(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || len(f)%2 != 0 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{
		Name:       strings.TrimPrefix(f[0], "Benchmark"),
		Iterations: iters,
		Metrics:    make(map[string]float64, (len(f)-2)/2),
	}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[f[i+1]] = v
	}
	return b, true
}
