package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBaseline(t *testing.T, dir, name string, benches []Benchmark) string {
	t.Helper()
	raw, err := json.Marshal(Baseline{Suite: "test", Benchmarks: benches})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCompareGatesEveryUnit is the satellite bugfix's lock: a synthetic
// vus/op regression with flat ns/op must fail the compare — before this
// PR only ns/op gated, so the virtual-makespan headline numbers of
// BENCH_scale.json could regress silently.
func TestCompareGatesEveryUnit(t *testing.T) {
	dir := t.TempDir()
	gates := map[string]gate{"ns/op": {pct: 25}, "vus/op": {pct: 1}}
	oldPath := writeBaseline(t, dir, "old.json", []Benchmark{
		{Name: "AllreduceFlatVsHier/hier/ranks=64-8", Iterations: 100,
			Metrics: map[string]float64{"ns/op": 1000, "vus/op": 8.05, "B/op": 512}},
		{Name: "WorldScale/direct/ranks=64-8", Iterations: 100,
			Metrics: map[string]float64{"ns/op": 2000}},
	})

	cases := []struct {
		name string
		new  []Benchmark
		want int
	}{
		{"identical", []Benchmark{
			{Name: "AllreduceFlatVsHier/hier/ranks=64-8",
				Metrics: map[string]float64{"ns/op": 1000, "vus/op": 8.05, "B/op": 512}},
			{Name: "WorldScale/direct/ranks=64-8",
				Metrics: map[string]float64{"ns/op": 2000}},
		}, 0},
		{"vus-regressed-ns-flat", []Benchmark{
			{Name: "AllreduceFlatVsHier/hier/ranks=64-8",
				Metrics: map[string]float64{"ns/op": 1000, "vus/op": 128.85}},
			{Name: "WorldScale/direct/ranks=64-8",
				Metrics: map[string]float64{"ns/op": 2000}},
		}, 1},
		{"ns-regressed", []Benchmark{
			{Name: "AllreduceFlatVsHier/hier/ranks=64-8",
				Metrics: map[string]float64{"ns/op": 1000, "vus/op": 8.05}},
			{Name: "WorldScale/direct/ranks=64-8",
				Metrics: map[string]float64{"ns/op": 3000}},
		}, 1},
		{"ungated-unit-regression-passes", []Benchmark{
			{Name: "AllreduceFlatVsHier/hier/ranks=64-8",
				Metrics: map[string]float64{"ns/op": 1000, "vus/op": 8.05, "B/op": 1 << 20}},
			{Name: "WorldScale/direct/ranks=64-8",
				Metrics: map[string]float64{"ns/op": 2000}},
		}, 0},
		{"within-thresholds", []Benchmark{
			{Name: "AllreduceFlatVsHier/hier/ranks=64-8",
				Metrics: map[string]float64{"ns/op": 1200, "vus/op": 8.1}},
			{Name: "WorldScale/direct/ranks=64-8",
				Metrics: map[string]float64{"ns/op": 2400}},
		}, 0},
		{"missing-benchmark-passes", []Benchmark{
			{Name: "AllreduceFlatVsHier/hier/ranks=64-8",
				Metrics: map[string]float64{"ns/op": 1000, "vus/op": 8.05}},
		}, 0},
		{"dropped-unit-passes", []Benchmark{
			{Name: "AllreduceFlatVsHier/hier/ranks=64-8",
				Metrics: map[string]float64{"ns/op": 1000}},
			{Name: "WorldScale/direct/ranks=64-8",
				Metrics: map[string]float64{"ns/op": 2000}},
		}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			newPath := writeBaseline(t, dir, tc.name+".json", tc.new)
			if got := compareBaselines(io.Discard, oldPath, newPath, gates, nil); got != tc.want {
				t.Fatalf("compare exit = %d, want %d", got, tc.want)
			}
		})
	}
}

// TestInfoUnitsNeverGate: a collapsed hit% (the sweep engine's cache hit
// rate) is printed by -info but must not fail the compare — it reflects
// the request mix, not a cost — while a gated unit regressing in the same
// file still does.
func TestInfoUnitsNeverGate(t *testing.T) {
	dir := t.TempDir()
	gates := map[string]gate{"ns/op": {pct: 25}}
	info := parseInfo("hit%")
	oldPath := writeBaseline(t, dir, "info_old.json", []Benchmark{
		{Name: "Sweep/warm-8", Metrics: map[string]float64{"ns/op": 1000, "hit%": 100}},
	})
	collapsed := writeBaseline(t, dir, "info_collapsed.json", []Benchmark{
		{Name: "Sweep/warm-8", Metrics: map[string]float64{"ns/op": 1000, "hit%": 0}},
	})
	if got := compareBaselines(io.Discard, oldPath, collapsed, gates, info); got != 0 {
		t.Fatalf("hit%% collapse gated the compare: exit %d", got)
	}
	both := writeBaseline(t, dir, "info_both.json", []Benchmark{
		{Name: "Sweep/warm-8", Metrics: map[string]float64{"ns/op": 5000, "hit%": 0}},
	})
	if got := compareBaselines(io.Discard, oldPath, both, gates, info); got != 1 {
		t.Fatalf("ns/op regression must still gate: exit %d", got)
	}
}

func TestParseGates(t *testing.T) {
	gates, err := parseGates("ns/op=25,vus/op=1,p99/op=25,+req/s=25")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]gate{
		"ns/op":  {pct: 25},
		"vus/op": {pct: 1},
		"p99/op": {pct: 25},
		"req/s":  {pct: 25, higherBetter: true},
	}
	if len(gates) != len(want) {
		t.Fatalf("gates = %v", gates)
	}
	for u, g := range want {
		if gates[u] != g {
			t.Fatalf("gates[%q] = %+v, want %+v", u, gates[u], g)
		}
	}
	for _, bad := range []string{"", "ns/op", "ns/op=", "=5", "ns/op=x", "ns/op=-3", "+=5"} {
		if _, err := parseGates(bad); err == nil {
			t.Fatalf("parseGates(%q) must fail", bad)
		}
	}
}

// TestCompareServiceUnits locks the service-trajectory gating: p99/op is a
// cost (regresses upward, like ns/op), req/s is higher-is-better — a
// throughput *drop* beyond the threshold fails, a rise of any size passes.
func TestCompareServiceUnits(t *testing.T) {
	dir := t.TempDir()
	gates, err := parseGates("p99/op=25,+req/s=25")
	if err != nil {
		t.Fatal(err)
	}
	oldPath := writeBaseline(t, dir, "svc_old.json", []Benchmark{
		{Name: "Serve/tenants=2-8", Iterations: 100,
			Metrics: map[string]float64{"req/s": 1000, "p99/op": 2_000_000}},
	})
	cases := []struct {
		name string
		new  map[string]float64
		want int
	}{
		{"flat", map[string]float64{"req/s": 1000, "p99/op": 2_000_000}, 0},
		{"throughput-drop-fails", map[string]float64{"req/s": 600, "p99/op": 2_000_000}, 1},
		{"throughput-drop-within-threshold", map[string]float64{"req/s": 800, "p99/op": 2_000_000}, 0},
		{"throughput-rise-passes", map[string]float64{"req/s": 5000, "p99/op": 2_000_000}, 0},
		{"p99-regress-fails", map[string]float64{"req/s": 1000, "p99/op": 3_000_000}, 1},
		{"p99-improvement-passes", map[string]float64{"req/s": 1000, "p99/op": 500_000}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			newPath := writeBaseline(t, dir, tc.name+".json", []Benchmark{
				{Name: "Serve/tenants=2-8", Iterations: 100, Metrics: tc.new},
			})
			if got := compareBaselines(io.Discard, oldPath, newPath, gates, nil); got != tc.want {
				t.Fatalf("compare exit = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestParseLine(t *testing.T) {
	b, ok := parseLine("BenchmarkAllreduceFlatVsHier/hier/ranks=64-8   	     100	  11839086 ns/op	         8.055 vus/op	 5143818 B/op	   45825 allocs/op")
	if !ok {
		t.Fatal("parseLine failed")
	}
	if b.Name != "AllreduceFlatVsHier/hier/ranks=64-8" || b.Iterations != 100 {
		t.Fatalf("parsed %+v", b)
	}
	if b.Metrics["vus/op"] != 8.055 || b.Metrics["ns/op"] != 11839086 {
		t.Fatalf("metrics %v", b.Metrics)
	}
}

// TestCompareOutputDeterministic locks the -compare report's ordering: the
// diff walks Go maps (name → metrics, unit → gate), so without the sort
// passes the report would shuffle between runs — and a baseline diff that
// moves lines on every CI run is undiffable. Two baselines whose benchmark
// lists are permutations of each other must render byte-identical reports
// across repeated runs, with benchmark names, gated units, info units and
// NEW entries each in sorted order.
func TestCompareOutputDeterministic(t *testing.T) {
	dir := t.TempDir()
	gates := map[string]gate{"ns/op": {pct: 25}, "vus/op": {pct: 1}, "p99/op": {pct: 25}}
	info := map[string]bool{"hit%": true, "miss%": true}
	mk := func(name string) Benchmark {
		return Benchmark{Name: name, Iterations: 100, Metrics: map[string]float64{
			"ns/op": 1000, "vus/op": 8, "p99/op": 500, "hit%": 90, "miss%": 10,
		}}
	}
	benches := []Benchmark{mk("Zeta/r=4-8"), mk("Alpha/r=2-8"), mk("Mid/r=1-8")}
	oldPath := writeBaseline(t, dir, "old.json", benches)
	// The new side lists the shared benchmarks in reverse and adds two NEW
	// ones, also out of order.
	reversed := []Benchmark{mk("Mid/r=1-8"), mk("Alpha/r=2-8"), mk("Zeta/r=4-8"),
		mk("New/b-8"), mk("New/a-8")}
	newPath := writeBaseline(t, dir, "new.json", reversed)

	render := func() string {
		var buf strings.Builder
		if got := compareBaselines(&buf, oldPath, newPath, gates, info); got != 0 {
			t.Fatalf("compare exit = %d, want 0", got)
		}
		return buf.String()
	}
	first := render()
	for i := 0; i < 10; i++ {
		if again := render(); again != first {
			t.Fatalf("run %d rendered a different report:\n--- first\n%s--- again\n%s", i, first, again)
		}
	}
	// Ordering spot-checks: names sorted within the report, NEW block
	// sorted at the end.
	idx := func(sub string) int {
		i := strings.Index(first, sub)
		if i < 0 {
			t.Fatalf("report missing %q:\n%s", sub, first)
		}
		return i
	}
	if !(idx("Alpha/r=2-8") < idx("Mid/r=1-8") && idx("Mid/r=1-8") < idx("Zeta/r=4-8")) {
		t.Fatalf("benchmark names not sorted:\n%s", first)
	}
	if !(idx("NEW      New/a-8") < idx("NEW      New/b-8")) {
		t.Fatalf("NEW entries not sorted:\n%s", first)
	}
	// Within one benchmark, gated units sorted (ns/op, p99/op, vus/op) and
	// info units after them (hit%, miss%).
	alpha := first[idx("Alpha"):idx("Mid")]
	if !(strings.Index(alpha, "ns/op") < strings.Index(alpha, "p99/op") &&
		strings.Index(alpha, "p99/op") < strings.Index(alpha, "vus/op") &&
		strings.Index(alpha, "vus/op") < strings.Index(alpha, "hit%") &&
		strings.Index(alpha, "hit%") < strings.Index(alpha, "miss%")) {
		t.Fatalf("units not sorted within a benchmark:\n%s", alpha)
	}
}
