// Package appfit's root benchmarks regenerate the paper's evaluation: one
// testing.B target per table and figure (DESIGN.md §4 maps them), plus
// ablation benches for the design choices the paper calls out. Run with
//
//	go test -bench=. -benchmem
//
// Reported custom metrics carry the experiment's headline quantity (e.g.
// pct_tasks_replicated for Figure 3, overhead_pct for Figure 4) so the
// bench output doubles as the experiment record.
package appfit_test

import (
	"fmt"
	"testing"

	"appfit/internal/bench"
	"appfit/internal/bench/workload"
	"appfit/internal/buffer"
	"appfit/internal/cluster"
	"appfit/internal/core"
	"appfit/internal/dist"
	"appfit/internal/experiments"
	"appfit/internal/fault"
	"appfit/internal/fit"
	"appfit/internal/rt"
	"appfit/internal/stats"
	"appfit/internal/sweep"
	"appfit/internal/vote"
)

// freshEngine gives each figure regeneration its own sweep engine so the
// results cache never carries work across iterations — the benchmark keeps
// measuring the full figure, not a cache lookup. BenchmarkSweep (in
// internal/bench/scale) measures the cache itself.
func freshEngine() *sweep.Engine { return sweep.New(sweep.Options{}) }

// BenchmarkTable1Registry measures building every Table-I job DAG.
func BenchmarkTable1Registry(b *testing.B) {
	cm := workload.DefaultCostModel()
	for i := 0; i < b.N; i++ {
		for _, w := range bench.All() {
			nodes := 1
			if w.Distributed() {
				nodes = 4
			}
			job := w.BuildJob(workload.Tiny, nodes, cm)
			if len(job.Tasks) == 0 {
				b.Fatal("empty job")
			}
		}
	}
}

// BenchmarkFig1DataflowVsForkJoin measures the Figure 1 comparison.
func BenchmarkFig1DataflowVsForkJoin(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Fig1(freshEngine()) == "" {
			b.Fatal("empty fig1")
		}
	}
}

// BenchmarkFig2RecoveryPath measures one full SDC detect-restore-vote cycle
// (the Figure 2 sequence) end to end on the real runtime.
func BenchmarkFig2RecoveryPath(b *testing.B) {
	data := buffer.NewF64(1024)
	for i := 0; i < b.N; i++ {
		inj := fault.NewScript().Set(1, 0, fault.SDC).SetBit(1, 0, 9)
		r := rt.New(rt.Config{Workers: 2, Selector: core.ReplicateAll{}, Injector: inj})
		r.Submit("k", func(ctx *rt.Ctx) {
			x := ctx.F64(0)
			for j := range x {
				x[j]++
			}
		}, rt.Inout("A", data))
		if err := r.Shutdown(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3AppFIT regenerates Figure 3 (one repeat per iteration) and
// reports the average replication fractions.
func BenchmarkFig3AppFIT(b *testing.B) {
	var lastTasks, lastTime float64
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.Fig3(experiments.Fig3Config{
			Scale: workload.Tiny, Workers: 2, Repeats: 1,
		})
		var ts, tm []float64
		for _, r := range rows {
			ts = append(ts, r.PctTasks10)
			tm = append(tm, r.PctTime10)
		}
		lastTasks, lastTime = stats.Mean(ts), stats.Mean(tm)
	}
	b.ReportMetric(lastTasks, "pct_tasks_replicated_10x")
	b.ReportMetric(lastTime, "pct_time_replicated_10x")
}

// BenchmarkFig4Overhead regenerates Figure 4 and reports the average
// fault-free complete-replication overhead.
func BenchmarkFig4Overhead(b *testing.B) {
	var avg float64
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Fig4(freshEngine(), workload.Tiny)
		if err != nil {
			b.Fatal(err)
		}
		var ovs []float64
		for _, r := range rows {
			ovs = append(ovs, r.OverheadPct)
		}
		avg = stats.Mean(ovs)
	}
	b.ReportMetric(avg, "overhead_pct")
}

// BenchmarkFig5SharedScaling regenerates Figure 5 and reports the mean
// 16-core fault-free speedup across the shared-memory benchmarks.
func BenchmarkFig5SharedScaling(b *testing.B) {
	var mean16 float64
	for i := 0; i < b.N; i++ {
		pts, _, err := experiments.Fig5(freshEngine(), workload.Tiny)
		if err != nil {
			b.Fatal(err)
		}
		var sp []float64
		for _, p := range pts {
			if p.Cores == 16 && p.Rate == 0 {
				sp = append(sp, p.Speedup)
			}
		}
		mean16 = stats.Mean(sp)
	}
	b.ReportMetric(mean16, "speedup_16_cores")
}

// BenchmarkFig6DistScaling regenerates Figure 6 and reports the mean
// 1024-core fault-free speedup over 64 cores.
func BenchmarkFig6DistScaling(b *testing.B) {
	var mean1024 float64
	for i := 0; i < b.N; i++ {
		pts, _, err := experiments.Fig6(freshEngine(), workload.Tiny)
		if err != nil {
			b.Fatal(err)
		}
		var sp []float64
		for _, p := range pts {
			if p.Cores == 1024 && p.Rate == 0 {
				sp = append(sp, p.Speedup)
			}
		}
		mean1024 = stats.Mean(sp)
	}
	b.ReportMetric(mean1024, "speedup_1024_over_64")
}

// BenchmarkAblationSelectors regenerates the selection-policy ablation.
func BenchmarkAblationSelectors(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Ablation("cholesky", workload.Tiny); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationComparators measures the paper's comparator trade-off
// (bitwise vs checksum, §III) on a full replicated run.
func BenchmarkAblationComparators(b *testing.B) {
	for _, cmp := range []vote.Comparator{vote.Bitwise{}, vote.Checksum{}} {
		b.Run(cmp.Name(), func(b *testing.B) {
			w, _ := bench.ByName("stream")
			for i := 0; i < b.N; i++ {
				r := rt.New(rt.Config{
					Workers: 2, Selector: core.ReplicateAll{}, Comparator: cmp,
				})
				_ = w.BuildRT(r, workload.Tiny)
				if err := r.Shutdown(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationVoters measures the paper's multiple-voters hardening
// (§IV-A) cost.
func BenchmarkAblationVoters(b *testing.B) {
	for _, voters := range []int{1, 3} {
		b.Run(map[int]string{1: "single", 3: "triple"}[voters], func(b *testing.B) {
			w, _ := bench.ByName("cholesky")
			for i := 0; i < b.N; i++ {
				r := rt.New(rt.Config{
					Workers: 2, Selector: core.ReplicateAll{},
					Voters: voters, CheckpointCopies: voters,
				})
				_ = w.BuildRT(r, workload.Tiny)
				if err := r.Shutdown(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationStaleness compares App_FIT's completion-time FIT
// accounting against the strict decision-time variant (§IV-B design choice).
func BenchmarkAblationStaleness(b *testing.B) {
	tasks := make([]fit.Task, 5000)
	total := 0.0
	for i := range tasks {
		tasks[i] = fit.Task{ID: uint64(i + 1), DUE: 1}
		total += 1
	}
	b.Run("app_fit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := core.NewAppFIT(total/10, len(tasks))
			for _, t := range tasks {
				s.Observe(t, s.Decide(t))
			}
		}
	})
	b.Run("strict", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := core.NewAppFITStrict(total/10, len(tasks))
			for _, t := range tasks {
				s.Observe(t, s.Decide(t))
			}
		}
	})
}

// BenchmarkHaloWorld drives the reusable workload halo exchange (the
// pattern behind examples/hybrid_pingpong and the paper's Figure 6
// communication shape) on a real distributed World end to end — build,
// drain, verify against the serial reference — so the figure's traffic can
// be produced by real dist execution, not only the cluster simulator.
func BenchmarkHaloWorld(b *testing.B) {
	for _, ranks := range []int{4, 8} {
		ranks := ranks
		b.Run(fmt.Sprintf("ranks=%d", ranks), func(b *testing.B) {
			var msgs uint64
			for i := 0; i < b.N; i++ {
				w := dist.NewWorld(dist.Config{Ranks: ranks})
				h, err := workload.BuildHalo(w.Comm(), workload.HaloConfig{Iters: 8, N: 1024})
				if err != nil {
					b.Fatal(err)
				}
				if err := w.Shutdown(); err != nil {
					b.Fatal(err)
				}
				if err := h.Verify(); err != nil {
					b.Fatal(err)
				}
				msgs = w.MessagesSent()
			}
			b.ReportMetric(float64(msgs), "msgs/world")
		})
	}
}

// BenchmarkClusterSimThroughput measures the virtual-time engine itself:
// simulated tasks per second on a replicated 16-node run.
func BenchmarkClusterSimThroughput(b *testing.B) {
	w, _ := bench.ByName("linpack")
	job := w.BuildJob(workload.Small, 16, workload.DefaultCostModel())
	cfg := cluster.Config{
		Nodes: 16, CoresPerNode: 16, ReplicaCores: 16,
		Replicated: cluster.All(len(job.Tasks)),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.Run(job, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(job.Tasks)), "tasks/run")
}

// BenchmarkRuntimeTaskThroughput measures the real runtime's end-to-end
// submit+execute rate without and with full replication (the paper's
// "fault-tolerance based on task-parallel dataflow is efficient" claim).
func BenchmarkRuntimeTaskThroughput(b *testing.B) {
	for _, repl := range []bool{false, true} {
		name := "unreplicated"
		var sel core.Selector = core.ReplicateNone{}
		if repl {
			name = "replicated"
			sel = core.ReplicateAll{}
		}
		b.Run(name, func(b *testing.B) {
			r := rt.New(rt.Config{Workers: 4, Selector: sel})
			buf := buffer.NewF64(256)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.Submit("w", func(ctx *rt.Ctx) {
					x := ctx.F64(0)
					for j := range x {
						x[j]++
					}
				}, rt.Inout("A", buf))
			}
			if err := r.Shutdown(); err != nil {
				b.Fatal(err)
			}
		})
	}
}
