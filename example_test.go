package appfit_test

import (
	"fmt"

	"appfit"
)

// Example shows the basic dataflow submission pattern: two tasks chained by
// an inout dependency on region "A" and an independent task on "B".
func Example() {
	r := appfit.New(appfit.Config{Workers: 2})
	a := appfit.F64{1}
	b := appfit.F64{10}
	incr := func(ctx *appfit.Ctx) { ctx.F64(0)[0]++ }
	r.Submit("A1", incr, appfit.Inout("A", a))
	r.Submit("A2", incr, appfit.Inout("A", a))
	r.Submit("B", incr, appfit.Inout("B", b))
	if err := r.Shutdown(); err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(a[0], b[0])
	// Output: 3 11
}

// ExampleNewAppFIT shows the paper's usage scenario: a FIT threshold that
// keeps today's reliability while error rates are 10× higher, with the
// heuristic choosing which tasks to replicate.
func ExampleNewAppFIT() {
	const tasks = 100
	const bytesPerTask = 1 << 20
	rates := appfit.Roadrunner()
	threshold := rates.TotalFIT(bytesPerTask * tasks) // app FIT at 1× rates
	sel := appfit.NewAppFIT(threshold, tasks)

	r := appfit.New(appfit.Config{
		Workers:  2,
		Selector: sel,
		Rates:    rates.Scale(10), RatesSet: true,
	})
	for i := 0; i < tasks; i++ {
		buf := appfit.NewF64(bytesPerTask / 8)
		r.Submit("work", func(ctx *appfit.Ctx) {
			x := ctx.F64(0)
			x[0]++
		}, appfit.Inout(fmt.Sprintf("T%d", i), buf))
	}
	if err := r.Shutdown(); err != nil {
		fmt.Println("error:", err)
		return
	}
	st := r.Stats()
	fmt.Printf("replicated %d of %d tasks, unprotected FIT within threshold: %v\n",
		st.Replicated, tasks, sel.CurrentFIT() <= threshold)
	// Output: replicated 90 of 100 tasks, unprotected FIT within threshold: true
}

// ExampleNewWorld shows the distributed (OmpSs+MPI style) substrate: two
// ranks exchanging a block through dependency-gated send/receive tasks on
// the world communicator.
func ExampleNewWorld() {
	w := appfit.NewWorld(appfit.WorldConfig{Ranks: 2})
	c := w.Comm()
	src := appfit.F64{42}
	dst := appfit.NewF64(1)
	c.Rank(0).Send(1, 0, "s", src)
	c.Rank(1).Recv(0, 0, "d", dst)
	if err := w.Shutdown(); err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(dst[0])
	// Output: 42
}

// ExampleComm_Split derives two isolated sub-communicators by color and
// runs a reduction in each: comm ranks are densely re-numbered by key, the
// groups share a tag, and the private matching context of each group
// guarantees their traffic can never cross.
func ExampleComm_Split() {
	w := appfit.NewWorld(appfit.WorldConfig{Ranks: 4})
	colors := []int{0, 1, 0, 1} // evens and odds
	keys := []int{0, 0, 1, 1}
	subs, err := w.Comm().Split(colors, keys)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	vals := []appfit.F64{{1}, {10}, {2}, {20}}
	subs[0].AllreduceSum(0, "s", []appfit.F64{vals[0], vals[2]})
	subs[1].AllreduceSum(0, "s", []appfit.F64{vals[1], vals[3]})
	if err := w.Shutdown(); err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(vals[0][0], vals[1][0], vals[2][0], vals[3][0])
	// Output: 3 30 3 30
}

// ExampleBlockTopology places a four-rank World two ranks per node and
// prices the same reduction's traffic on the placed fabric: the
// communicator auto-selects the hierarchical allreduce (node-local fold →
// leader exchange → node-local fan-out), so only one full vector crosses
// the node boundary in each direction while the node-mates trade over the
// memory bus.
func ExampleBlockTopology() {
	topo, err := appfit.BlockTopology(4, 2, appfit.MemoryBusNet(), appfit.MarenostrumNet())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	sim := appfit.NewSimTopologyTransport(topo)
	w := appfit.NewWorld(appfit.WorldConfig{Ranks: 4, Topology: topo, Transport: sim})
	vals := []appfit.F64{{1}, {2}, {3}, {4}}
	w.Comm().AllreduceSum(0, "s", vals)
	if err := w.Shutdown(); err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("hierarchical:", w.Comm().Hierarchical())
	fmt.Println("sum:", vals[0][0], "wire bytes:", sim.WireBytes())
	// Output:
	// hierarchical: true
	// sum: 10 wire bytes: 16
}

// ExampleNewWorld_pingpong is a deterministic miniature of
// examples/hybrid_pingpong: two ranks relax a block toward each other's
// state and exchange it every iteration under selective replication with
// seeded fault injectors. Communication tasks gate on the dataflow
// dependencies and are never replicated, so exactly ranks × iters messages
// cross the wire.
func ExampleNewWorld_pingpong() {
	const iters = 4
	w := appfit.NewWorld(appfit.WorldConfig{
		Ranks: 2,
		RT: func(rank int) appfit.Config {
			return appfit.Config{
				Workers:  2,
				Selector: appfit.NewAppFIT(0, iters), // zero budget: protect every compute task
				Injector: appfit.NewSeededInjector(uint64(rank) + 1),
			}
		},
	})
	c := w.Comm()
	local := []appfit.F64{{0}, {100}}
	remote := []appfit.F64{appfit.NewF64(1), appfit.NewF64(1)}
	for it := 0; it < iters; it++ {
		for rk := 0; rk < 2; rk++ {
			rk := rk
			c.Rank(rk).Runtime().Submit("relax", func(ctx *appfit.Ctx) {
				ctx.F64(0)[0] = (ctx.F64(0)[0] + ctx.F64(1)[0]) / 2
			}, appfit.Inout("local", local[rk]), appfit.In("remote", remote[rk]))
			c.Rank(rk).Send(1-rk, it, "local", local[rk])
			c.Rank(rk).Recv(1-rk, it, "remote", remote[rk])
		}
	}
	if err := w.Shutdown(); err != nil {
		fmt.Println("error:", err)
		return
	}
	st := w.Stats()
	fmt.Printf("converged: %v %v\n", local[0][0], local[1][0])
	fmt.Printf("replicated %d of %d compute tasks, messages sent: %d\n",
		st.Replicated, 2*iters, w.MessagesSent())
	// Output:
	// converged: 25 25
	// replicated 8 of 8 compute tasks, messages sent: 8
}
