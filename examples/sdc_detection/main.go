// SDC detection walk-through: the paper's Figure 2 in action. A silent data
// corruption is injected into the primary execution of a replicated task;
// the runtime detects the mismatch at the comparison point, restores the
// checkpointed inputs, re-executes, votes, and delivers the correct result.
//
//	go run ./examples/sdc_detection
package main

import (
	"fmt"
	"log"
	"os"

	"appfit/internal/buffer"
	"appfit/internal/core"
	"appfit/internal/fault"
	"appfit/internal/rt"
	"appfit/internal/trace"
)

func main() {
	// Script the fault: task 1, primary attempt, flip output bit 17.
	inj := fault.NewScript().Set(1, 0, fault.SDC).SetBit(1, 0, 17)
	tr := trace.New()
	r := rt.New(rt.Config{
		Workers:  2,
		Selector: core.ReplicateAll{},
		Injector: inj,
		Tracer:   tr,
	})

	data := buffer.NewF64(1024)
	for i := range data {
		data[i] = float64(i)
	}
	r.Submit("saxpy-ish", func(ctx *rt.Ctx) {
		x := ctx.F64(0)
		for i := range x {
			x[i] = 2*x[i] + 1
		}
	}, rt.Inout("data", data))

	if err := r.Shutdown(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("fault-event timeline (Figure 2 steps):")
	tr.WriteTimeline(os.Stdout)
	st := r.Stats()
	fmt.Printf("\nSDC detected: %d  recovered: %d  re-executions: %d\n",
		st.SDCDetected, st.SDCRecovered, st.Reexecutions)
	fmt.Printf("checkpoint saves/restores: %d/%d\n",
		st.Checkpoint.Saves, st.Checkpoint.Restores)
	ok := true
	for i := range data {
		if data[i] != 2*float64(i)+1 {
			ok = false
			break
		}
	}
	fmt.Printf("result bit-exact despite injected corruption: %v\n", ok)
}
