// Quickstart: submit dataflow tasks with declared in/out/inout accesses, let
// the runtime infer dependencies, and turn on App_FIT selective replication
// with a reliability target.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"appfit/internal/buffer"
	"appfit/internal/core"
	"appfit/internal/fit"
	"appfit/internal/rt"
)

func main() {
	// The application: a tiny three-stage pipeline over two arrays, the
	// paper's Figure 1 shape — A1 and A2 chain on array A, task B is
	// independent and free to overlap under dataflow.
	a := buffer.NewF64(1 << 14)
	b := buffer.NewF64(1 << 14)
	for i := range a {
		a[i], b[i] = 1, 1
	}

	// Reliability target: keep the app at its FIT estimated under today's
	// error rates, while the injected rates are 10× (the paper's
	// pessimistic exascale scenario). 3 tasks, each touching one array.
	const totalTasks = 3
	rates := fit.Roadrunner()
	appFIT := rates.TotalFIT(a.SizeBytes()*2 + b.SizeBytes())
	selector := core.NewAppFIT(appFIT, totalTasks)

	r := rt.New(rt.Config{
		Workers:  4,
		Selector: selector,
		Rates:    rates.Scale(10), RatesSet: true,
	})

	incr := func(ctx *rt.Ctx) {
		x := ctx.F64(0)
		for i := range x {
			x[i]++
		}
	}
	r.Submit("A1", incr, rt.Inout("A", a)) // runs first on A
	r.Submit("A2", incr, rt.Inout("A", a)) // waits for A1 (RAW on A)
	r.Submit("B", incr, rt.Inout("B", b))  // independent: overlaps A1

	if err := r.Shutdown(); err != nil {
		log.Fatal(err)
	}

	st := r.Stats()
	fmt.Printf("tasks completed:   %d\n", st.Completed)
	fmt.Printf("tasks replicated:  %d (App_FIT chose them to hold %.3g FIT)\n",
		st.Replicated, appFIT)
	fmt.Printf("unprotected FIT:   %.3g (threshold %.3g, contract held: %v)\n",
		selector.CurrentFIT(), appFIT, selector.CurrentFIT() <= appFIT)
	fmt.Printf("a[0]=%v b[0]=%v (expect 3 and 2)\n", a[0], b[0])
}
