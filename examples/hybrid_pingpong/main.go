// Hybrid dataflow + message passing (the paper's OmpSs+MPI model, §III):
// four ranks, each its own dataflow runtime, compute under App_FIT selective
// replication with injected faults and exchange halo blocks with their pair
// partner every iteration. The pattern itself is the reusable
// internal/bench/workload halo exchange, built against the communicator
// API: communication tasks gate on the dataflow dependencies, overlapping
// transfers with computation, and are never replicated (a replica would
// duplicate the message).
//
//	go run ./examples/hybrid_pingpong
package main

import (
	"fmt"
	"log"

	"appfit/internal/bench/workload"
	"appfit/internal/core"
	"appfit/internal/dist"
	"appfit/internal/fault"
	"appfit/internal/fit"
	"appfit/internal/rt"
)

const (
	ranks = 4
	n     = 4096
	iters = 8
)

func main() {
	rates := fit.Roadrunner().Scale(10)
	// Per-rank task count: 1 compute per iteration.
	selectors := make([]*core.AppFIT, ranks)
	w := dist.NewWorld(dist.Config{
		Ranks: ranks,
		RT: func(rank int) rt.Config {
			perTask := rates.TotalFIT(n * 8)
			thr := perTask * iters / 10 // keep today's reliability at 10× rates
			selectors[rank] = core.NewAppFIT(thr, iters)
			inj := fault.NewSeeded(uint64(rank) + 1)
			inj.Boost = 1e9 // make FIT-scale faults observable in a demo
			return rt.Config{
				Workers:  2,
				Selector: selectors[rank],
				Rates:    rates, RatesSet: true,
				Injector: inj,
			}
		},
	})

	h, err := workload.BuildHalo(w.Comm(), workload.HaloConfig{Iters: iters, N: n})
	if err != nil {
		log.Fatal(err)
	}
	if err := w.Shutdown(); err != nil {
		log.Fatal(err)
	}
	if err := h.Verify(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-6s %-12s %-12s %-22s %s\n", "rank", "replicated", "faults", "unprotected FIT", "local[0]")
	for rk := 0; rk < ranks; rk++ {
		st := w.Rank(rk).Stats()
		fmt.Printf("%-6d %-12s %-12s %-22s %.4f\n", rk,
			fmt.Sprintf("%d/%d", st.Replicated, iters),
			fmt.Sprintf("sdc:%d due:%d", st.SDCRecovered, st.DUERecovered),
			fmt.Sprintf("%.3g <= %.3g", selectors[rk].CurrentFIT(), selectors[rk].Threshold()),
			h.Local[rk][0])
	}
	fmt.Printf("messages sent: %d (= ranks × iters; replication never duplicated one)\n",
		w.MessagesSent())
}
