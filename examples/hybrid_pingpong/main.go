// Hybrid dataflow + message passing (the paper's OmpSs+MPI model, §III):
// four ranks, each its own dataflow runtime, compute under App_FIT selective
// replication with injected faults and exchange halo blocks with their pair
// partner every iteration. The pattern itself is the reusable
// internal/bench/workload halo exchange, built against the communicator
// API: communication tasks gate on the dataflow dependencies, overlapping
// transfers with computation, and are never replicated (a replica would
// duplicate the message).
//
//	go run ./examples/hybrid_pingpong
package main

import (
	"fmt"
	"log"

	"appfit/internal/bench/workload"
	"appfit/internal/core"
	"appfit/internal/dist"
	"appfit/internal/fault"
	"appfit/internal/fit"
	"appfit/internal/place"
	"appfit/internal/rt"
	"appfit/internal/simnet"
)

const (
	ranks = 4
	n     = 4096
	iters = 8
)

func main() {
	rates := fit.Roadrunner().Scale(10)
	// Per-rank task count: 1 compute per iteration.
	selectors := make([]*core.AppFIT, ranks)
	w := dist.NewWorld(dist.Config{
		Ranks: ranks,
		RT: func(rank int) rt.Config {
			perTask := rates.TotalFIT(n * 8)
			thr := perTask * iters / 10 // keep today's reliability at 10× rates
			selectors[rank] = core.NewAppFIT(thr, iters)
			inj := fault.NewSeeded(uint64(rank) + 1)
			inj.Boost = 1e9 // make FIT-scale faults observable in a demo
			return rt.Config{
				Workers:  2,
				Selector: selectors[rank],
				Rates:    rates, RatesSet: true,
				Injector: inj,
			}
		},
	})

	h, err := workload.BuildHalo(w.Comm(), workload.HaloConfig{Iters: iters, N: n})
	if err != nil {
		log.Fatal(err)
	}
	if err := w.Shutdown(); err != nil {
		log.Fatal(err)
	}
	if err := h.Verify(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-6s %-12s %-12s %-22s %s\n", "rank", "replicated", "faults", "unprotected FIT", "local[0]")
	for rk := 0; rk < ranks; rk++ {
		st := w.Rank(rk).Stats()
		fmt.Printf("%-6d %-12s %-12s %-22s %.4f\n", rk,
			fmt.Sprintf("%d/%d", st.Replicated, iters),
			fmt.Sprintf("sdc:%d due:%d", st.SDCRecovered, st.DUERecovered),
			fmt.Sprintf("%.3g <= %.3g", selectors[rk].CurrentFIT(), selectors[rk].Threshold()),
			h.Local[rk][0])
	}
	fmt.Printf("messages sent: %d (= ranks × iters; replication never duplicated one)\n",
		w.MessagesSent())

	fmt.Println()
	placementDemo()
}

// placementDemo prices the same halo pattern on a placed fabric under two
// placements: partners as node-mates (every exchange rides the memory bus)
// versus partners split across nodes (every exchange crosses InfiniBand
// and all of it funnels through one pair of cables). The old flat network
// model charged both identically; the topology meter separates them — and
// since PR 5 the loop closes: the terrible placement's recorded traffic
// profile is handed to the placement optimizer, which finds its way back
// to the co-located assignment instead of leaving the diagnosis on the
// table.
func placementDemo() {
	intra, inter := simnet.MemoryBus(), simnet.Marenostrum()
	run := func(nodeOf []int, prof *place.Profile) *dist.Sim {
		topo, err := simnet.NewTopology(nodeOf, intra, inter)
		if err != nil {
			log.Fatal(err)
		}
		sim := dist.NewSimTopology(topo)
		sim.Record(prof) // nil = just price, don't profile
		w := dist.NewWorld(dist.Config{Ranks: ranks, Transport: sim, Topology: topo})
		if _, err := workload.BuildHalo(w.Comm(), workload.HaloConfig{Iters: iters, N: n}); err != nil {
			log.Fatal(err)
		}
		if err := w.Shutdown(); err != nil {
			log.Fatal(err)
		}
		return sim
	}
	// Partners are comm rank ^ 1: {0,1} and {2,3}. Good placement puts
	// each pair on one node; the bad one splits every pair across nodes.
	// The bad run records the traffic profile the optimizer searches with.
	good := run([]int{0, 0, 1, 1}, nil)
	prof := place.NewProfile(ranks)
	bad := run([]int{0, 1, 0, 1}, prof)
	fmt.Println("placement pricing (same halo traffic on the placed fabric):")
	fmt.Printf("  pairs co-located:  %8d wire bytes, %8.2f µs virtual\n",
		good.WireBytes(), good.Now().Seconds()*1e6)
	fmt.Printf("  pairs split:       %8d wire bytes, %8.2f µs virtual\n",
		bad.WireBytes(), bad.Now().Seconds()*1e6)
	fmt.Printf("  a bad placement is now %.0f× more expensive in virtual time\n",
		bad.Now().Seconds()/good.Now().Seconds())

	// Close the loop: optimize the terrible placement against its own
	// recorded profile (machine shape derived from it: 2 ranks per node),
	// then actually run the halo on the optimized topology.
	res, err := place.Optimize(prof, bad.Topology(), place.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	opt := run(nodeOfSlice(res.Topo), nil)
	fmt.Printf("  optimized (from split, %d evals): %d wire bytes, %8.2f µs virtual — recovered the co-located plan\n",
		res.Evals(), opt.WireBytes(), opt.Now().Seconds()*1e6)
	if opt.Now() != good.Now() || opt.WireBytes() != good.WireBytes() {
		log.Fatalf("optimizer failed to recover the good placement: %v µs vs %v µs",
			opt.Now().Seconds()*1e6, good.Now().Seconds()*1e6)
	}
}

// nodeOfSlice flattens a topology back to its placement slice.
func nodeOfSlice(t *simnet.Topology) []int {
	nodeOf := make([]int, t.Ranks())
	for r := range nodeOf {
		nodeOf[r] = t.NodeOf(r)
	}
	return nodeOf
}
