// Reliability targets: run the Cholesky benchmark under App_FIT with a
// range of user-specified FIT thresholds and watch the replicated fraction
// respond — the paper's core usage scenario ("users can set the desired
// reliability in FIT that their application requires", §I).
//
//	go run ./examples/reliability_target
package main

import (
	"fmt"
	"log"

	"appfit/internal/bench/cholesky"
	"appfit/internal/bench/workload"
	"appfit/internal/core"
	"appfit/internal/fit"
	"appfit/internal/rt"
	"appfit/internal/trace"
)

func main() {
	w := cholesky.New()
	scale := workload.Tiny
	base := fit.Roadrunner()

	// Dry pass: learn the task count and the application's FIT at 1×.
	tr := trace.New()
	dry := rt.New(rt.Config{Workers: 2, Rates: base, RatesSet: true, Tracer: tr})
	verify := w.BuildRT(dry, scale)
	if err := dry.Shutdown(); err != nil {
		log.Fatal(err)
	}
	if err := verify(); err != nil {
		log.Fatal(err)
	}
	n := tr.Len()
	appFIT := 0.0
	for _, rec := range tr.Records() {
		appFIT += rec.FITDue + rec.FITSdc
	}
	fmt.Printf("cholesky/%s: %d tasks, application FIT at 1x rates: %.4g\n\n", scale, n, appFIT)
	fmt.Printf("%-22s %-18s %-16s %s\n", "threshold (FIT)", "tasks replicated", "unprotected FIT", "within target")

	// Sweep targets from very strict (1% of today's FIT) to fully relaxed
	// (10× today's FIT covers the 10×-scaled rates with no replication).
	for _, m := range []float64{0.01, 0.1, 0.5, 1, 2, 5, 10} {
		threshold := appFIT * m
		sel := core.NewAppFIT(threshold, n)
		r := rt.New(rt.Config{
			Workers:  2,
			Selector: sel,
			Rates:    base.Scale(10), RatesSet: true,
		})
		verify := w.BuildRT(r, scale)
		if err := r.Shutdown(); err != nil {
			log.Fatal(err)
		}
		if err := verify(); err != nil {
			log.Fatal(err)
		}
		st := r.Stats()
		fmt.Printf("%-22s %-18s %-16s %v\n",
			fmt.Sprintf("%.4g (%gx app FIT)", threshold, m),
			fmt.Sprintf("%d/%d (%.0f%%)", st.Replicated, n, st.PctTasksReplicated()),
			fmt.Sprintf("%.4g", sel.CurrentFIT()),
			sel.CurrentFIT() <= threshold*1.0001)
	}
	fmt.Println("\nstricter targets replicate more; a 10x-relaxed target needs no replication at all")
}
