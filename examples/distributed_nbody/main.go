// Distributed N-body on the virtual cluster: the paper's Figure 6 scenario
// for one benchmark. The same task DAG is scheduled over growing machine
// sizes with complete replication on spare cores, with and without injected
// faults, and the speedup curve is printed.
//
//	go run ./examples/distributed_nbody
package main

import (
	"fmt"
	"log"

	"appfit/internal/bench/nbody"
	"appfit/internal/bench/workload"
	"appfit/internal/cluster"
	"appfit/internal/fault"
)

func main() {
	w := nbody.New()
	cm := workload.DefaultCostModel()
	const coresPerNode = 16

	fmt.Println("nbody, complete replication, virtual Marenostrum (16 cores/node)")
	fmt.Printf("%-8s %-8s %-14s %-14s %-10s %s\n",
		"nodes", "cores", "makespan(ms)", "faulty(ms)", "speedup", "recoveries")

	var base cluster.Result
	for i, nodes := range []int{1, 2, 4, 8, 16} {
		job := w.BuildJob(workload.Small, nodes, cm)
		repl := cluster.All(len(job.Tasks))

		clean, err := cluster.Run(job, cluster.Config{
			Nodes: nodes, CoresPerNode: coresPerNode, Replicated: repl,
		})
		if err != nil {
			log.Fatal(err)
		}
		faulty, err := cluster.Run(job, cluster.Config{
			Nodes: nodes, CoresPerNode: coresPerNode, Replicated: repl,
			Injector: fault.NewFixedRate(7, 5e-3, 5e-3),
		})
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			base = clean
		}
		fmt.Printf("%-8d %-8d %-14.3f %-14.3f %-10.2f sdc=%d due=%d reexec=%d\n",
			nodes, nodes*coresPerNode,
			clean.Makespan.Seconds()*1e3,
			faulty.Makespan.Seconds()*1e3,
			clean.Speedup(base),
			faulty.SDCDetected, faulty.DUERecovered, faulty.Reexecutions)
	}
	fmt.Println("\nreplication rides the spare cores: the speedup curve tracks the fault-free one")
}
