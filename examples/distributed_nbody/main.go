// Distributed N-body two ways.
//
// Part 1 — the paper's Figure 6 scenario: the same task DAG is scheduled
// over growing virtual machine sizes with complete replication on spare
// cores, with and without injected faults, and the speedup curve is printed.
//
// Part 2 — the same blocked algorithm running for real on the distributed
// World (internal/dist): one rank per block, each rank its own dataflow
// runtime under complete replication with injected faults, positions
// allgathered every step through the dependency-gated ring collective over
// a simnet-backed transport that charges every message Marenostrum-class
// latency and bandwidth. The final positions must match the serial
// reference bitwise: replication recovers every injected fault and the
// communication tasks are never replicated, so no message is ever
// duplicated.
//
//	go run ./examples/distributed_nbody
package main

import (
	"fmt"
	"log"

	"appfit/internal/bench/nbody"
	"appfit/internal/bench/workload"
	"appfit/internal/buffer"
	"appfit/internal/cluster"
	"appfit/internal/core"
	"appfit/internal/dist"
	"appfit/internal/fault"
	"appfit/internal/rt"
	"appfit/internal/simnet"
)

func main() {
	virtualScaling()
	fmt.Println()
	worldRun()
}

func virtualScaling() {
	w := nbody.New()
	cm := workload.DefaultCostModel()
	const coresPerNode = 16

	fmt.Println("nbody, complete replication, virtual Marenostrum (16 cores/node)")
	fmt.Printf("%-8s %-8s %-14s %-14s %-10s %s\n",
		"nodes", "cores", "makespan(ms)", "faulty(ms)", "speedup", "recoveries")

	var base cluster.Result
	for i, nodes := range []int{1, 2, 4, 8, 16} {
		job := w.BuildJob(workload.Small, nodes, cm)
		repl := cluster.All(len(job.Tasks))

		clean, err := cluster.Run(job, cluster.Config{
			Nodes: nodes, CoresPerNode: coresPerNode, Replicated: repl,
		})
		if err != nil {
			log.Fatal(err)
		}
		faulty, err := cluster.Run(job, cluster.Config{
			Nodes: nodes, CoresPerNode: coresPerNode, Replicated: repl,
			Injector: fault.NewFixedRate(7, 5e-3, 5e-3),
		})
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			base = clean
		}
		fmt.Printf("%-8d %-8d %-14.3f %-14.3f %-10.2f sdc=%d due=%d reexec=%d\n",
			nodes, nodes*coresPerNode,
			clean.Makespan.Seconds()*1e3,
			faulty.Makespan.Seconds()*1e3,
			clean.Speedup(base),
			faulty.SDCDetected, faulty.DUERecovered, faulty.Reexecutions)
	}
	fmt.Println("\nreplication rides the spare cores: the speedup curve tracks the fault-free one")
}

func worldRun() {
	const (
		ranks = 4  // one block per rank
		b     = 64 // bodies per block
		steps = 3
	)
	p := nbody.Params{N: ranks * b, B: b, Steps: steps}

	sim := dist.NewSim(simnet.Marenostrum())
	w := dist.NewWorld(dist.Config{
		Ranks:     ranks,
		Transport: sim,
		RT: func(rank int) rt.Config {
			return rt.Config{
				Workers:  2,
				Selector: core.ReplicateAll{},
				Injector: fault.NewFixedRate(uint64(rank)*31+3, 0.02, 0.02),
			}
		},
	})

	// Rank rk owns block rk (positions + velocities) and holds ghost copies
	// of every other block's positions, refreshed by allgather each step.
	pk := func(j int) string { return fmt.Sprintf("pos[%d]", j) }
	pos := make([][]buffer.F64, ranks) // pos[rk][j]: rank rk's copy of block j
	vel := make([]buffer.F64, ranks)
	acc := make([]buffer.F64, ranks)
	pacc := make([][]buffer.F64, ranks) // pacc[rk][j]: partial forces of block j on block rk
	posBufs := make([][]buffer.Buffer, ranks)
	for rk := 0; rk < ranks; rk++ {
		pos[rk] = make([]buffer.F64, ranks)
		pacc[rk] = make([]buffer.F64, ranks)
		posBufs[rk] = make([]buffer.Buffer, ranks)
		for j := 0; j < ranks; j++ {
			pos[rk][j] = buffer.NewF64(3 * b)
			pacc[rk][j] = buffer.NewF64(3 * b)
			posBufs[rk][j] = pos[rk][j]
		}
		nbody.InitBlock(pos[rk][rk], rk, b)
		vel[rk] = buffer.NewF64(3 * b)
		acc[rk] = buffer.NewF64(3 * b)
	}

	for step := 0; step < steps; step++ {
		// Allgather: the first-class ring collective circulates every rank's
		// post-integration block over neighbor links; each rank's first send
		// reads its own region, so it gates on the previous step's integrate,
		// and the receives write the ghost regions the force tasks read.
		w.Allgather(step, pk, posBufs)
		for rk := 0; rk < ranks; rk++ {
			for j := 0; j < ranks; j++ {
				j := j
				w.Rank(rk).Runtime().Submit("force", func(ctx *rt.Ctx) {
					nbody.PartialForces(ctx.F64(2), ctx.F64(0), ctx.F64(1), b, b)
				}, rt.In(pk(rk), pos[rk][rk]), rt.In(pk(j), pos[rk][j]),
					rt.Out(fmt.Sprintf("pacc[%d]", j), pacc[rk][j]))
			}
			args := []rt.Arg{rt.Out("acc", acc[rk])}
			for j := 0; j < ranks; j++ {
				args = append(args, rt.In(fmt.Sprintf("pacc[%d]", j), pacc[rk][j]))
			}
			w.Rank(rk).Runtime().Submit("reduce", func(ctx *rt.Ctx) {
				parts := make([][]float64, ranks)
				for j := 0; j < ranks; j++ {
					parts[j] = ctx.F64(j + 1)
				}
				nbody.Reduce(ctx.F64(0), parts)
			}, args...)
			w.Rank(rk).Runtime().Submit("integrate", func(ctx *rt.Ctx) {
				nbody.Integrate(ctx.F64(0), ctx.F64(1), ctx.F64(2), b)
			}, rt.Inout(pk(rk), pos[rk][rk]), rt.Inout("vel", vel[rk]), rt.In("acc", acc[rk]))
		}
	}
	if err := w.Shutdown(); err != nil {
		log.Fatal(err)
	}

	want := nbody.Reference(p)
	exact := true
	for rk := 0; rk < ranks && exact; rk++ {
		for k := 0; k < 3*b; k++ {
			if pos[rk][rk][k] != want[rk*3*b+k] {
				exact = false
				break
			}
		}
	}

	fmt.Printf("nbody on the World: %d ranks × %d bodies, %d steps, complete replication, injected faults\n",
		ranks, b, steps)
	fmt.Printf("%-6s %-12s %-12s %s\n", "rank", "replicated", "reexecs", "faults recovered")
	for rk := 0; rk < ranks; rk++ {
		st := w.Rank(rk).Stats()
		fmt.Printf("%-6d %-12d %-12d sdc:%d due:%d\n", rk,
			st.Replicated, st.Reexecutions, st.SDCRecovered, st.DUERecovered)
	}
	fmt.Printf("messages sent: %d (allgather rings, never duplicated by replication)\n", w.MessagesSent())
	fmt.Printf("fabric charge: %d bytes in %.1f µs of virtual Marenostrum time\n",
		sim.BytesSent(), sim.Now().Seconds()*1e6)
	fmt.Printf("bitwise identical to serial reference: %v\n", exact)
}
