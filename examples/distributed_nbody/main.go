// Distributed N-body two ways.
//
// Part 1 — the paper's Figure 6 scenario: the same task DAG is scheduled
// over growing virtual machine sizes with complete replication on spare
// cores, with and without injected faults, and the speedup curve is printed.
//
// Part 2 — the same blocked algorithm running for real on the distributed
// World (internal/dist): one rank per block, each rank its own dataflow
// runtime under complete replication with injected faults, over a
// simnet-backed transport that charges every message Marenostrum-class
// latency and bandwidth. The ranks form a 2×2 grid split into row and
// column sub-communicators (Comm.Split), and positions move hierarchically
// every step — a ring allgather inside each row, then ring allgathers
// inside each column forwarding the row-collected blocks — so every
// transfer rides a row or column neighbor link instead of the full n²
// all-to-all ring, the topology-aware shape hierarchical collectives take
// on a real fabric. The final positions must match the serial reference
// bitwise: replication recovers every injected fault and the communication
// tasks are never replicated, so no message is ever duplicated.
//
//	go run ./examples/distributed_nbody
package main

import (
	"fmt"
	"log"

	"appfit/internal/bench/nbody"
	"appfit/internal/bench/workload"
	"appfit/internal/buffer"
	"appfit/internal/cluster"
	"appfit/internal/core"
	"appfit/internal/dist"
	"appfit/internal/fault"
	"appfit/internal/rt"
	"appfit/internal/simnet"
)

func main() {
	virtualScaling()
	fmt.Println()
	worldRun()
}

func virtualScaling() {
	w := nbody.New()
	cm := workload.DefaultCostModel()
	const coresPerNode = 16

	fmt.Println("nbody, complete replication, virtual Marenostrum (16 cores/node)")
	fmt.Printf("%-8s %-8s %-14s %-14s %-10s %s\n",
		"nodes", "cores", "makespan(ms)", "faulty(ms)", "speedup", "recoveries")

	var base cluster.Result
	for i, nodes := range []int{1, 2, 4, 8, 16} {
		job := w.BuildJob(workload.Small, nodes, cm)
		repl := cluster.All(len(job.Tasks))

		clean, err := cluster.Run(job, cluster.Config{
			Nodes: nodes, CoresPerNode: coresPerNode, Replicated: repl,
		})
		if err != nil {
			log.Fatal(err)
		}
		faulty, err := cluster.Run(job, cluster.Config{
			Nodes: nodes, CoresPerNode: coresPerNode, Replicated: repl,
			Injector: fault.NewFixedRate(7, 5e-3, 5e-3),
		})
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			base = clean
		}
		fmt.Printf("%-8d %-8d %-14.3f %-14.3f %-10.2f sdc=%d due=%d reexec=%d\n",
			nodes, nodes*coresPerNode,
			clean.Makespan.Seconds()*1e3,
			faulty.Makespan.Seconds()*1e3,
			clean.Speedup(base),
			faulty.SDCDetected, faulty.DUERecovered, faulty.Reexecutions)
	}
	fmt.Println("\nreplication rides the spare cores: the speedup curve tracks the fault-free one")
}

func worldRun() {
	const (
		gridR = 2 // rank grid rows
		gridC = 2 // rank grid columns: rank rk sits at (rk/gridC, rk%gridC)
		ranks = gridR * gridC
		b     = 64 // bodies per block
		steps = 3
	)
	p := nbody.Params{N: ranks * b, B: b, Steps: steps}

	sim := dist.NewSim(simnet.Marenostrum())
	w := dist.NewWorld(dist.Config{
		Ranks:     ranks,
		Transport: sim,
		RT: func(rank int) rt.Config {
			return rt.Config{
				Workers:  2,
				Selector: core.ReplicateAll{},
				Injector: fault.NewFixedRate(uint64(rank)*31+3, 0.02, 0.02),
			}
		},
	})

	// Split the world into row and column sub-communicators: rows[rk] is
	// rank rk's row group (comm rank = its column), cols[rk] its column
	// group (comm rank = its row). Each Split mints a fresh matching
	// context, so row and column plumbing can reuse tags without ever
	// cross-matching.
	c := w.Comm()
	rowColors := make([]int, ranks)
	rowKeys := make([]int, ranks)
	colColors := make([]int, ranks)
	colKeys := make([]int, ranks)
	for rk := 0; rk < ranks; rk++ {
		rowColors[rk], rowKeys[rk] = rk/gridC, rk%gridC
		colColors[rk], colKeys[rk] = rk%gridC, rk/gridC
	}
	rows, err := c.Split(rowColors, rowKeys)
	if err != nil {
		log.Fatal(err)
	}
	cols, err := c.Split(colColors, colKeys)
	if err != nil {
		log.Fatal(err)
	}

	// Rank rk owns block rk (positions + velocities) and holds ghost copies
	// of every other block's positions, refreshed hierarchically each step.
	pk := func(j int) string { return fmt.Sprintf("pos[%d]", j) }
	pos := make([][]buffer.F64, ranks) // pos[rk][j]: rank rk's copy of block j
	vel := make([]buffer.F64, ranks)
	acc := make([]buffer.F64, ranks)
	pacc := make([][]buffer.F64, ranks) // pacc[rk][j]: partial forces of block j on block rk
	for rk := 0; rk < ranks; rk++ {
		pos[rk] = make([]buffer.F64, ranks)
		pacc[rk] = make([]buffer.F64, ranks)
		for j := 0; j < ranks; j++ {
			pos[rk][j] = buffer.NewF64(3 * b)
			pacc[rk][j] = buffer.NewF64(3 * b)
		}
		nbody.InitBlock(pos[rk][rk], rk, b)
		vel[rk] = buffer.NewF64(3 * b)
		acc[rk] = buffer.NewF64(3 * b)
	}

	for step := 0; step < steps; step++ {
		// Phase A — row allgather: after it, rank (r, j) holds every block
		// of row r. Each member's first send reads its own post-integration
		// region, so the ring gates on the previous step's integrate.
		for r := 0; r < gridR; r++ {
			rc := rows[r*gridC]
			bufsRow := make([][]buffer.Buffer, gridC)
			for j := 0; j < gridC; j++ {
				rk := r*gridC + j
				bufsRow[j] = make([]buffer.Buffer, gridC)
				for j2 := 0; j2 < gridC; j2++ {
					bufsRow[j][j2] = pos[rk][r*gridC+j2]
				}
			}
			rc.Allgather(step, func(j int) string { return pk(r*gridC + j) }, bufsRow)
		}
		// Phase B — column allgathers: for each block-column bc, column
		// comm member i forwards block (i, bc) it collected in phase A, so
		// every rank ends holding every block; the forwarding sends are
		// dataflow-gated on the phase-A receives that wrote those regions.
		for cp := 0; cp < gridC; cp++ {
			cc := cols[cp]
			for bc := 0; bc < gridC; bc++ {
				bufsCol := make([][]buffer.Buffer, gridR)
				for i := 0; i < gridR; i++ {
					rk := i*gridC + cp
					bufsCol[i] = make([]buffer.Buffer, gridR)
					for i2 := 0; i2 < gridR; i2++ {
						bufsCol[i][i2] = pos[rk][i2*gridC+bc]
					}
				}
				cc.Allgather(step*gridC+bc, func(j int) string { return pk(j*gridC + bc) }, bufsCol)
			}
		}
		for rk := 0; rk < ranks; rk++ {
			for j := 0; j < ranks; j++ {
				j := j
				w.Rank(rk).Runtime().Submit("force", func(ctx *rt.Ctx) {
					nbody.PartialForces(ctx.F64(2), ctx.F64(0), ctx.F64(1), b, b)
				}, rt.In(pk(rk), pos[rk][rk]), rt.In(pk(j), pos[rk][j]),
					rt.Out(fmt.Sprintf("pacc[%d]", j), pacc[rk][j]))
			}
			args := []rt.Arg{rt.Out("acc", acc[rk])}
			for j := 0; j < ranks; j++ {
				args = append(args, rt.In(fmt.Sprintf("pacc[%d]", j), pacc[rk][j]))
			}
			w.Rank(rk).Runtime().Submit("reduce", func(ctx *rt.Ctx) {
				parts := make([][]float64, ranks)
				for j := 0; j < ranks; j++ {
					parts[j] = ctx.F64(j + 1)
				}
				nbody.Reduce(ctx.F64(0), parts)
			}, args...)
			w.Rank(rk).Runtime().Submit("integrate", func(ctx *rt.Ctx) {
				nbody.Integrate(ctx.F64(0), ctx.F64(1), ctx.F64(2), b)
			}, rt.Inout(pk(rk), pos[rk][rk]), rt.Inout("vel", vel[rk]), rt.In("acc", acc[rk]))
		}
	}
	if err := w.Shutdown(); err != nil {
		log.Fatal(err)
	}

	want := nbody.Reference(p)
	exact := true
	for rk := 0; rk < ranks && exact; rk++ {
		for k := 0; k < 3*b; k++ {
			if pos[rk][rk][k] != want[rk*3*b+k] {
				exact = false
				break
			}
		}
	}

	fmt.Printf("nbody on the World: %d×%d rank grid × %d bodies, %d steps, complete replication, injected faults\n",
		gridR, gridC, b, steps)
	fmt.Println("positions move hierarchically: row allgather, then column allgathers of the row-collected blocks")
	fmt.Printf("%-6s %-12s %-12s %s\n", "rank", "replicated", "reexecs", "faults recovered")
	for rk := 0; rk < ranks; rk++ {
		st := w.Rank(rk).Stats()
		fmt.Printf("%-6d %-12d %-12d sdc:%d due:%d\n", rk,
			st.Replicated, st.Reexecutions, st.SDCRecovered, st.DUERecovered)
	}
	fmt.Printf("messages sent: %d (row/column allgather rings, never duplicated by replication)\n", w.MessagesSent())
	fmt.Printf("fabric charge: %d bytes in %.1f µs of virtual Marenostrum time\n",
		sim.BytesSent(), sim.Now().Seconds()*1e6)
	fmt.Printf("bitwise identical to serial reference: %v\n", exact)
}
