// Distributed N-body two ways.
//
// Part 1 — the paper's Figure 6 scenario: the same task DAG is scheduled
// over growing virtual machine sizes with complete replication on spare
// cores, with and without injected faults, and the speedup curve is printed.
//
// Part 2 — the same blocked algorithm running for real on the distributed
// World (internal/dist): one rank per block, each rank its own dataflow
// runtime under complete replication with injected faults, over a
// simnet-backed transport that charges every message by placement. The 2×2
// rank grid is placed two ranks per node (simnet.BlockTopology): the
// fabric's meter prices node-mate transfers at memory-bus cost and
// node-crossing ones at Marenostrum InfiniBand cost, serialized per cable.
// The same workload runs twice on that identical placed fabric — once with
// the World kept placement-blind, so every position refresh is the flat
// ring allgather, and once with the topology handed to the World, so the
// communicator auto-selects the hierarchical allgather (node-local ring →
// leader exchange → node-local fan-out). Both runs must match the serial
// reference bitwise — replication recovers every injected fault, the
// communication tasks are never replicated, and the hierarchical route
// moves the same payloads — but the hierarchical one reports a lower
// virtual-time makespan, because only one rank per node crosses the wire.
//
//	go run ./examples/distributed_nbody
package main

import (
	"fmt"
	"log"

	"appfit/internal/bench/nbody"
	"appfit/internal/bench/workload"
	"appfit/internal/buffer"
	"appfit/internal/cluster"
	"appfit/internal/core"
	"appfit/internal/dist"
	"appfit/internal/fault"
	"appfit/internal/rt"
	"appfit/internal/simnet"
)

func main() {
	virtualScaling()
	fmt.Println()
	worldRun()
}

func virtualScaling() {
	w := nbody.New()
	cm := workload.DefaultCostModel()
	const coresPerNode = 16

	fmt.Println("nbody, complete replication, virtual Marenostrum (16 cores/node)")
	fmt.Printf("%-8s %-8s %-14s %-14s %-10s %s\n",
		"nodes", "cores", "makespan(ms)", "faulty(ms)", "speedup", "recoveries")

	var base cluster.Result
	for i, nodes := range []int{1, 2, 4, 8, 16} {
		job := w.BuildJob(workload.Small, nodes, cm)
		repl := cluster.All(len(job.Tasks))

		clean, err := cluster.Run(job, cluster.Config{
			Nodes: nodes, CoresPerNode: coresPerNode, Replicated: repl,
		})
		if err != nil {
			log.Fatal(err)
		}
		faulty, err := cluster.Run(job, cluster.Config{
			Nodes: nodes, CoresPerNode: coresPerNode, Replicated: repl,
			Injector: fault.NewFixedRate(7, 5e-3, 5e-3),
		})
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			base = clean
		}
		fmt.Printf("%-8d %-8d %-14.3f %-14.3f %-10.2f sdc=%d due=%d reexec=%d\n",
			nodes, nodes*coresPerNode,
			clean.Makespan.Seconds()*1e3,
			faulty.Makespan.Seconds()*1e3,
			clean.Speedup(base),
			faulty.SDCDetected, faulty.DUERecovered, faulty.Reexecutions)
	}
	fmt.Println("\nreplication rides the spare cores: the speedup curve tracks the fault-free one")
}

const (
	gridR  = 2 // rank grid rows: two nodes
	gridC  = 2 // rank grid columns: two ranks per node
	ranks  = gridR * gridC
	bodies = 64 // bodies per block
	steps  = 3
)

// nbodyOnWorld runs the blocked n-body for real on a World over the placed
// fabric topo. When placed is true the World knows the topology and its
// allgather goes hierarchical; when false it is placement-blind and uses
// the flat ring — the fabric prices both identically, so the virtual-time
// difference is purely the algorithm's routing. Returns the transport for
// its accounting plus whether the result matches the serial reference
// bitwise.
func nbodyOnWorld(topo *simnet.Topology, placed bool) (*dist.Sim, *dist.World, bool) {
	p := nbody.Params{N: ranks * bodies, B: bodies, Steps: steps}
	sim := dist.NewSimTopology(topo)
	cfg := dist.Config{
		Ranks:     ranks,
		Transport: sim,
		RT: func(rank int) rt.Config {
			return rt.Config{
				Workers:  2,
				Selector: core.ReplicateAll{},
				Injector: fault.NewFixedRate(uint64(rank)*31+3, 0.02, 0.02),
			}
		},
	}
	if placed {
		cfg.Topology = topo
	}
	w := dist.NewWorld(cfg)
	c := w.Comm()

	// Rank rk owns block rk (positions + velocities) and holds ghost copies
	// of every other block's positions, refreshed by one world allgather
	// per step — flat ring or hierarchical, chosen by the communicator.
	pk := func(j int) string { return fmt.Sprintf("pos[%d]", j) }
	pos := make([][]buffer.F64, ranks) // pos[rk][j]: rank rk's copy of block j
	vel := make([]buffer.F64, ranks)
	acc := make([]buffer.F64, ranks)
	pacc := make([][]buffer.F64, ranks) // pacc[rk][j]: partial forces of block j on block rk
	for rk := 0; rk < ranks; rk++ {
		pos[rk] = make([]buffer.F64, ranks)
		pacc[rk] = make([]buffer.F64, ranks)
		for j := 0; j < ranks; j++ {
			pos[rk][j] = buffer.NewF64(3 * bodies)
			pacc[rk][j] = buffer.NewF64(3 * bodies)
		}
		nbody.InitBlock(pos[rk][rk], rk, bodies)
		vel[rk] = buffer.NewF64(3 * bodies)
		acc[rk] = buffer.NewF64(3 * bodies)
	}

	for step := 0; step < steps; step++ {
		// Position refresh: every member's first send reads its own
		// post-integration region, so the exchange gates on the previous
		// step's integrate, whatever route the payloads take.
		bufs := make([][]buffer.Buffer, ranks)
		for rk := 0; rk < ranks; rk++ {
			bufs[rk] = make([]buffer.Buffer, ranks)
			for j := 0; j < ranks; j++ {
				bufs[rk][j] = pos[rk][j]
			}
		}
		c.Allgather(step, pk, bufs)
		for rk := 0; rk < ranks; rk++ {
			for j := 0; j < ranks; j++ {
				j := j
				w.Rank(rk).Runtime().Submit("force", func(ctx *rt.Ctx) {
					nbody.PartialForces(ctx.F64(2), ctx.F64(0), ctx.F64(1), bodies, bodies)
				}, rt.In(pk(rk), pos[rk][rk]), rt.In(pk(j), pos[rk][j]),
					rt.Out(fmt.Sprintf("pacc[%d]", j), pacc[rk][j]))
			}
			args := []rt.Arg{rt.Out("acc", acc[rk])}
			for j := 0; j < ranks; j++ {
				args = append(args, rt.In(fmt.Sprintf("pacc[%d]", j), pacc[rk][j]))
			}
			w.Rank(rk).Runtime().Submit("reduce", func(ctx *rt.Ctx) {
				parts := make([][]float64, ranks)
				for j := 0; j < ranks; j++ {
					parts[j] = ctx.F64(j + 1)
				}
				nbody.Reduce(ctx.F64(0), parts)
			}, args...)
			w.Rank(rk).Runtime().Submit("integrate", func(ctx *rt.Ctx) {
				nbody.Integrate(ctx.F64(0), ctx.F64(1), ctx.F64(2), bodies)
			}, rt.Inout(pk(rk), pos[rk][rk]), rt.Inout("vel", vel[rk]), rt.In("acc", acc[rk]))
		}
	}
	if err := w.Shutdown(); err != nil {
		log.Fatal(err)
	}

	want := nbody.Reference(p)
	exact := true
	for rk := 0; rk < ranks && exact; rk++ {
		for k := 0; k < 3*bodies; k++ {
			if pos[rk][rk][k] != want[rk*3*bodies+k] {
				exact = false
				break
			}
		}
	}
	return sim, w, exact
}

func worldRun() {
	// Place the 2×2 grid two ranks per node: rank pairs {0,1} and {2,3}
	// are node-mates on the memory bus; only node 0 ↔ node 1 traffic pays
	// Marenostrum InfiniBand cost.
	topo, err := simnet.BlockTopology(ranks, gridC, simnet.MemoryBus(), simnet.Marenostrum())
	if err != nil {
		log.Fatal(err)
	}
	flatSim, flatW, flatExact := nbodyOnWorld(topo, false)
	hierSim, hierW, hierExact := nbodyOnWorld(topo, true)

	fmt.Printf("nbody on the World: %d×%d rank grid × %d bodies, %d steps, complete replication, injected faults\n",
		gridR, gridC, bodies, steps)
	fmt.Println("placed 2 ranks/node; same fabric priced twice: flat ring allgather vs hierarchical (auto-selected)")
	fmt.Printf("%-6s %-12s %-12s %s\n", "rank", "replicated", "reexecs", "faults recovered")
	for rk := 0; rk < ranks; rk++ {
		st := hierW.Rank(rk).Stats()
		fmt.Printf("%-6d %-12d %-12d sdc:%d due:%d\n", rk,
			st.Replicated, st.Reexecutions, st.SDCRecovered, st.DUERecovered)
	}
	fmt.Printf("messages sent: %d flat, %d hierarchical (never duplicated by replication)\n",
		flatW.MessagesSent(), hierW.MessagesSent())
	fmt.Printf("flat ring:     %6d bytes over the wire, %7.2f µs of virtual fabric time\n",
		flatSim.WireBytes(), flatSim.Now().Seconds()*1e6)
	fmt.Printf("hierarchical:  %6d bytes over the wire, %7.2f µs of virtual fabric time\n",
		hierSim.WireBytes(), hierSim.Now().Seconds()*1e6)
	fmt.Printf("hierarchical beats flat in virtual time: %v\n", hierSim.Now() < flatSim.Now())
	fmt.Printf("both bitwise identical to serial reference: %v\n", flatExact && hierExact)
}
