// Package appfit is selective task replication for task-parallel dataflow
// programs with application-specific reliability targets — a Go
// implementation of Subasi et al., "A Runtime Heuristic to Selectively
// Replicate Tasks for Application-Specific Reliability Targets" (IEEE
// CLUSTER 2016).
//
// Programs submit tasks that declare in/out/inout accesses on named data
// regions; the runtime infers dependencies and executes ready tasks on a
// worker pool. A Selector decides, per task, whether to replicate it: the
// App_FIT heuristic keeps the application's unprotected failure rate (in
// FIT, failures per 10⁹ hours) under a user-supplied threshold by
// replicating exactly the tasks whose estimated failure contribution would
// otherwise exceed the prorated budget. Replicated tasks are checkpointed,
// executed twice, compared bitwise, and recovered by re-execution and
// majority vote when a silent data corruption or crash is detected.
//
// Distributed programs (the paper's OmpSs+MPI hybrid, §III) run on a World
// of in-process ranks and communicate through communicators: World.Comm is
// the world communicator, Comm.Split derives isolated sub-groups with
// densely re-numbered ranks (MPI_Comm_split style), and all point-to-point
// operations and collectives — Barrier, Broadcast, Allgather, Allreduce,
// ReduceScatter — are Comm-scoped, so two groups can never cross-match each
// other's traffic even with identical tags.
//
// Quick start:
//
//	sel := appfit.NewAppFIT(thresholdFIT, totalTasks)
//	r := appfit.New(appfit.Config{Workers: 8, Selector: sel})
//	a := appfit.NewF64(1 << 20)
//	r.Submit("scale", func(ctx *appfit.Ctx) {
//		x := ctx.F64(0)
//		for i := range x {
//			x[i] *= 2
//		}
//	}, appfit.Inout("A", a))
//	err := r.Shutdown()
//
// The package is a facade over the implementation packages; see DESIGN.md
// for the full architecture and EXPERIMENTS.md for the reproduction of the
// paper's evaluation.
package appfit

import (
	"io"

	"appfit/internal/buffer"
	"appfit/internal/core"
	"appfit/internal/dist"
	"appfit/internal/fault"
	"appfit/internal/fit"
	"appfit/internal/place"
	"appfit/internal/rt"
	"appfit/internal/serve"
	"appfit/internal/simnet"
	"appfit/internal/sweep"
	"appfit/internal/trace"
	"appfit/internal/vote"
)

// Runtime is the task-parallel dataflow runtime with the replication engine
// (the Nanos equivalent of the paper's §III design).
type Runtime = rt.Runtime

// Config configures a Runtime.
type Config = rt.Config

// Ctx gives a task body access to its argument buffers for the current
// execution attempt.
type Ctx = rt.Ctx

// Arg declares one task argument; TaskFunc is a task body. Bodies must be
// deterministic in their declared arguments: outputs are compared bitwise.
type (
	Arg      = rt.Arg
	TaskFunc = rt.TaskFunc
)

// Stats are the runtime's cumulative counters.
type Stats = rt.Stats

// New starts a runtime with cfg's worker pool running.
func New(cfg Config) *Runtime { return rt.New(cfg) }

// In declares a read-only argument on a named region.
func In(key string, b Buffer) Arg { return rt.In(key, b) }

// Out declares a write-only argument on a named region.
func Out(key string, b Buffer) Arg { return rt.Out(key, b) }

// Inout declares a read-modify-write argument on a named region.
func Inout(key string, b Buffer) Arg { return rt.Inout(key, b) }

// Buffer is a checkpointable, comparable, corruptible task argument.
// Concrete types: F64, C128, I64, U8.
type Buffer = buffer.Buffer

// F64, C128, I64 and U8 are the typed argument buffers.
type (
	F64  = buffer.F64
	C128 = buffer.C128
	I64  = buffer.I64
	U8   = buffer.U8
)

// NewF64 allocates a zeroed float64 buffer of n elements.
func NewF64(n int) F64 { return buffer.NewF64(n) }

// NewC128 allocates a zeroed complex128 buffer of n elements.
func NewC128(n int) C128 { return buffer.NewC128(n) }

// NewI64 allocates a zeroed int64 buffer of n elements.
func NewI64(n int) I64 { return buffer.NewI64(n) }

// NewU8 allocates a zeroed byte buffer of n elements.
func NewU8(n int) U8 { return buffer.NewU8(n) }

// Selector decides, per task, whether to replicate it.
type Selector = core.Selector

// AppFIT is the paper's heuristic (Equation 1).
type AppFIT = core.AppFIT

// NewAppFIT returns an App_FIT selector for an application of totalTasks
// tasks and the given FIT threshold.
func NewAppFIT(threshold float64, totalTasks int) *AppFIT {
	return core.NewAppFIT(threshold, totalTasks)
}

// ReplicateAll and ReplicateNone are the complete-replication and
// unprotected baselines.
type (
	ReplicateAll  = core.ReplicateAll
	ReplicateNone = core.ReplicateNone
)

// Rates are node-level failure rates in FIT; Task is a per-task estimate.
type (
	Rates   = fit.Rates
	FITTask = fit.Task
)

// Roadrunner returns the neutron-beam-derived rates the paper anchors to
// (Michalak et al.: crash 2.22×10³ FIT per 32 GB).
func Roadrunner() Rates { return fit.Roadrunner() }

// Injector supplies fault outcomes for execution attempts. NewSeededInjector
// injects at the estimated per-task rates (deterministically from a seed);
// NewFixedRateInjector uses constant per-execution probabilities.
type Injector = fault.Injector

// NewSeededInjector returns a deterministic FIT-driven injector.
func NewSeededInjector(seed uint64) *fault.Seeded { return fault.NewSeeded(seed) }

// NewFixedRateInjector returns an injector with constant probabilities.
func NewFixedRateInjector(seed uint64, pDUE, pSDC float64) *fault.FixedRate {
	return fault.NewFixedRate(seed, pDUE, pSDC)
}

// Comparator checks replica agreement; Bitwise is the paper's default.
type (
	Comparator = vote.Comparator
	Bitwise    = vote.Bitwise
	Checksum   = vote.Checksum
)

// Tracer records per-task events; attach via Config.Tracer.
type Tracer = trace.Tracer

// NewTracer returns an empty Tracer.
func NewTracer() *Tracer { return trace.New() }

// World is the distributed substrate (the OmpSs+MPI hybrid model, §III):
// in-process ranks, each with its own Runtime, exchanging messages through
// dependency-gated send/receive tasks scoped to communicators.
type World = dist.World

// WorldConfig configures a World.
type WorldConfig = dist.Config

// NewWorld starts a distributed world of communicating ranks.
func NewWorld(cfg WorldConfig) *World { return dist.NewWorld(cfg) }

// Comm is a communicator: the handle all distributed communication goes
// through. World.Comm returns the world communicator; Comm.Split derives
// isolated sub-communicators with densely re-numbered ranks and a private
// matching context.
type Comm = dist.Comm

// CommRank is one member's view of a communicator: comm-local rank plus
// the underlying world rank; point-to-point Send/Recv live here.
type CommRank = dist.CommRank

// ReduceOp combines src into dst element-wise in Allreduce/ReduceScatter;
// it must be deterministic in its arguments.
type ReduceOp = dist.ReduceOp

// Predefined commutative reduction operators.
var (
	OpSum = dist.OpSum
	OpMin = dist.OpMin
	OpMax = dist.OpMax
)

// Named argument errors of the distributed layer: out-of-range rank
// indices, malformed Comm.Split arguments and malformed vector-collective
// layouts (Allgatherv/ReduceScatterv counts and displacements) are reported
// as wrapped named errors instead of panics.
var (
	ErrRankOutOfRange = dist.ErrRankOutOfRange
	ErrSplitSize      = dist.ErrSplitSize
	ErrSplitColor     = dist.ErrSplitColor
	ErrSplitKey       = dist.ErrSplitKey
	ErrCollectiveArgs = dist.ErrCollectiveArgs
	ErrVectorArgs     = dist.ErrVectorArgs
)

// NetConfig is one interconnect link cost model (latency + bandwidth);
// Topology places World ranks on physical nodes with one model for
// node-mate links and one for node-crossing links. A World given a
// Topology auto-selects hierarchical collectives (node-local phase →
// leader exchange → node-local fan-out); a Sim transport given the same
// Topology prices and serializes every message by placement, so the
// virtual clock distinguishes a good placement from a terrible one. See
// DESIGN.md §8.
type (
	NetConfig = simnet.Config
	Topology  = simnet.Topology
)

// MarenostrumNet returns the paper testbed's InfiniBand-class link model.
func MarenostrumNet() NetConfig { return simnet.Marenostrum() }

// MemoryBusNet returns the shared-memory-class intra-node link model.
func MemoryBusNet() NetConfig { return simnet.MemoryBus() }

// NewTopology builds a topology from an explicit rank→node placement.
func NewTopology(nodeOf []int, intra, inter NetConfig) (*Topology, error) {
	return simnet.NewTopology(nodeOf, intra, inter)
}

// BlockTopology places ranks on nodes in contiguous blocks of perNode.
func BlockTopology(ranks, perNode int, intra, inter NetConfig) (*Topology, error) {
	return simnet.BlockTopology(ranks, perNode, intra, inter)
}

// MarenostrumTopology is the paper's machine shape: perNode ranks per
// node, memory-bus links inside a node, Marenostrum InfiniBand across.
func MarenostrumTopology(ranks, perNode int) (*Topology, error) {
	return simnet.MarenostrumTopology(ranks, perNode)
}

// SimTransport is the virtual-fabric transport: a World transport that
// additionally charges every message latency + bandwidth on a modeled
// interconnect and reports the link-occupancy makespan via Now().
type SimTransport = dist.Sim

// NewSimTransport returns a flat virtual-fabric transport (every rank its
// own node, every link priced by cfg). An invalid cfg — zero/negative
// bandwidth, negative or non-finite latency — panics with a wrapped
// ErrNetConfig: it is a programmer error, like scheduling a simulation
// event in the past. Check cfg.Validate() first when the model comes from
// configuration; the Topology constructors validate for you.
func NewSimTransport(cfg NetConfig) *SimTransport { return dist.NewSim(cfg) }

// NewSimTopologyTransport returns a placement-aware virtual-fabric
// transport: node-mate messages are priced by the topology's intra model,
// node-crossing ones by the inter model, serialized per physical cable.
func NewSimTopologyTransport(topo *Topology) *SimTransport { return dist.NewSimTopology(topo) }

// Named errors of the topology layer: malformed link cost models and
// placements (simnet constructors), and a World topology that does not
// cover the World's ranks.
var (
	ErrNetConfig     = simnet.ErrConfig
	ErrNetTopology   = simnet.ErrTopology
	ErrWorldTopology = dist.ErrTopology
)

// The placement-optimization pipeline (internal/place, DESIGN.md §9):
// capture a Profile of rank-pair traffic — record a live SimTransport
// (SimTransport.Record) or derive one statically — evaluate it under any
// candidate Topology, and search assignments against the meter's makespan.
// PlaceEval.Makespan is bitwise the makespan a live run of the profiled
// traffic would report on that topology.
type (
	// Profile is a directed rank-pair traffic matrix.
	Profile = place.Profile
	// PlaceOptions shapes the optimizer's machine and search budget.
	PlaceOptions = place.Options
	// PlaceEval is one candidate placement's price (makespan, wire bytes).
	PlaceEval = place.Eval
	// PlaceResult is an optimization outcome: best topology, its price,
	// the input placement's price, and the evaluated trajectory.
	PlaceResult = place.Result
	// PlaceScorer prices individual swap/relocate moves incrementally —
	// O(moved ranks' traffic degree) per candidate instead of a full
	// profile replay — with Eval bitwise equal to EvaluatePlacement of the
	// same assignment. The optimizer runs on it internally; it is exported
	// for callers building their own searches (DESIGN.md §10).
	PlaceScorer = place.Scorer
)

// NewProfile returns an empty traffic profile over ranks ranks.
func NewProfile(ranks int) *Profile { return place.NewProfile(ranks) }

// EvaluatePlacement prices a traffic profile under a candidate topology by
// replaying it through a fresh placement meter.
func EvaluatePlacement(p *Profile, topo *Topology) (PlaceEval, error) {
	return place.Evaluate(p, topo)
}

// OptimizePlacement searches rank→node assignments of profile p against
// the meter's makespan: a greedy co-location seed refined by seeded local
// search over delta-priced moves, never evaluating worse than the input
// placement start when the machine is derived from it. start may be nil
// to search from scratch (then opts.PerNode is required). Set
// opts.Anneal for simulated annealing instead of the default hill climb
// — same budget, same determinism per seed, better at escaping local
// minima on irregular traffic.
func OptimizePlacement(p *Profile, start *Topology, opts PlaceOptions) (PlaceResult, error) {
	return place.Optimize(p, start, opts)
}

// NewPlaceScorer builds an incremental evaluator for profile p starting
// at the given rank→node assignment, with links priced by intra/inter.
// Construction replays the profile once; every move after that is priced
// by delta.
func NewPlaceScorer(p *Profile, assign []int, intra, inter NetConfig) (*PlaceScorer, error) {
	return place.NewScorer(p, assign, intra, inter)
}

// Named errors of the placement optimizer.
var (
	ErrPlaceProfile  = place.ErrProfile
	ErrPlaceRanks    = place.ErrRanks
	ErrPlaceOptions  = place.ErrOptions
	ErrPlaceCapacity = place.ErrCapacity
)

// The parallel sweep engine (internal/sweep, DESIGN.md §11): batches of
// cluster simulations execute concurrently on a worker pool, identical
// in-flight requests coalesce, and completed results memoize in a bounded
// LRU cache behind a canonical content-addressed key — repeat traffic
// (parameter sweeps, warm reruns of a figure) is answered without
// re-simulating, bitwise-identical to a serial run.
type (
	// Sweep is the engine; one instance serves any number of goroutines.
	Sweep = sweep.Engine
	// SweepOptions sizes the worker pool and the results cache.
	SweepOptions = sweep.Options
	// SweepRequest is one simulation to run: a job on a cluster config.
	SweepRequest = sweep.Request
	// SweepResponse is one request's result, error and stage timings.
	SweepResponse = sweep.Response
	// SweepMetrics is the flat per-request timing record (queue wait,
	// cache lookup, simulation, total) behind SweepResponse.Metrics.
	SweepMetrics = sweep.Metrics
	// SweepStats are the engine's cumulative cache/coalescing counters.
	SweepStats = sweep.Stats
	// SweepRequestError names the request behind a failed sweep run; it
	// wraps ErrSweepRequest.
	SweepRequestError = sweep.RequestError
)

// ErrSweepRequest is the sentinel every failed sweep request wraps.
var ErrSweepRequest = sweep.ErrRequest

// NewSweep starts a sweep engine. The zero SweepOptions means one worker
// per CPU and the default cache size.
func NewSweep(opts SweepOptions) *Sweep { return sweep.New(opts) }

// WriteSweepMetricsCSV writes per-request stage timings as CSV, one row
// per request; SweepBatchMetrics collects them from a batch's responses.
func WriteSweepMetricsCSV(w io.Writer, ms []SweepMetrics) error {
	return sweep.WriteMetricsCSV(w, ms)
}

// SweepBatchMetrics extracts the per-request metrics of a batch in order.
func SweepBatchMetrics(resps []SweepResponse) []SweepMetrics {
	return sweep.BatchMetrics(resps)
}

// The multi-tenant service layer (internal/serve, DESIGN.md §12): a Serve
// wraps one sweep engine behind per-tenant bounded queues drained by
// deficit-round-robin at configured weights, with admission control (queue
// caps + token-bucket rate limits) that rejects fast with ErrServeAdmission
// instead of queueing unbounded work, and a graceful drain for shutdown.
// cmd/appfitd serves this over HTTP/JSON; cmd/appfit-load drives it.
type (
	// Serve is the multi-tenant server; one instance serves any number of
	// submitting goroutines.
	Serve = serve.Server
	// ServeOptions names the tenants and sizes the worker pool, DRR
	// quantum and engine.
	ServeOptions = serve.Options
	// ServeTenant is one tenant's admission and scheduling config: name,
	// DRR weight, queue cap, token-bucket rate/burst.
	ServeTenant = serve.TenantConfig
	// ServeResponse is one request's outcome with its service metrics.
	ServeResponse = serve.Response
	// ServeMetrics is the flat per-request service record: tenant,
	// admission wait, queue wait, then the engine's stage timings.
	ServeMetrics = serve.Metrics
	// ServeStats is the server's accounting snapshot (admitted, rejected,
	// completed, failed, queued, inflight — per tenant and total).
	ServeStats = serve.Stats
	// ServeAdmissionError is a rejection's detail: tenant, reason and the
	// size of the bounced batch. It wraps ErrServeAdmission.
	ServeAdmissionError = serve.AdmissionError
)

// ErrServeAdmission is the sentinel every admission rejection wraps.
var ErrServeAdmission = serve.ErrAdmission

// NewServe starts a multi-tenant server over opts.Engine (or a fresh
// engine when nil). At least one tenant is required.
func NewServe(opts ServeOptions) (*Serve, error) { return serve.New(opts) }

// ParseServeTenants parses a "name=weight[/rate[/burst[/cap]]],..." tenant
// spec, the format cmd/appfitd's -tenants flag uses.
func ParseServeTenants(spec string) ([]ServeTenant, error) { return serve.ParseTenants(spec) }

// WriteServeMetricsCSV writes tenant-labeled per-request service metrics
// as CSV, one row per request; ServeBatchMetrics collects them from a
// batch's responses.
func WriteServeMetricsCSV(w io.Writer, ms []ServeMetrics) error {
	return serve.WriteMetricsCSV(w, ms)
}

// ServeBatchMetrics extracts the service metrics of a batch in order.
func ServeBatchMetrics(resps []ServeResponse) []ServeMetrics {
	return serve.BatchMetrics(resps)
}
