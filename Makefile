# Repo checks. `make check` is the tier-1 gate plus vet and example builds.

GO ?= go

.PHONY: check vet build test race bench build-examples run-examples

check: vet race build-examples

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Compile every example and command entry point; catches facade drift that
# package tests cannot see.
build-examples:
	$(GO) build -o /dev/null ./examples/... ./cmd/...

# Run the fast examples end to end (the demos print their own evidence).
run-examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/hybrid_pingpong
	$(GO) run ./examples/distributed_nbody
