# Repo checks. `make check` is the tier-1 gate plus vet, example builds and a
# one-iteration pass over the scale benchmarks so they cannot rot.

GO ?= go

.PHONY: check vet build test race race-comm bench bench-figures bench-scale bench-build bench-compare build-examples run-examples check-topology check-placement check-sweep check-serve check-kernels check-lint fuzz-smoke

check: vet check-lint race race-comm build-examples check-topology check-placement check-sweep check-serve check-kernels bench-build

# Lint gate: appfitlint (cmd/appfitlint, DESIGN.md §14) must pass clean over
# the module — range-over-map emission order, wall-clock/math-rand use in
# deterministic packages, `// guarded by <mu>` field access, and %w sentinel
# wrapping at internal package boundaries — and the script then seeds each
# analyzer's own testdata back through the driver and requires a failure, so
# an analyzer that silently stopped firing cannot keep the gate green.
check-lint:
	sh scripts/check_lint.sh

# Fuzz smoke: a short native-fuzz pass over the sweep key encoder's
# canonicality invariants (stability, spelling collapse, sensitivity).
# 10 seconds is a smoke budget — run with a longer -fuzztime for real
# exploration; failures minimize into internal/sweep/testdata/fuzz/.
fuzz-smoke:
	$(GO) test -fuzz FuzzSweepKeyCanonical -fuzztime 10s ./internal/sweep

# Topology gate: cmd/experiments must keep compiling against the Topology
# API and its flat-vs-hierarchical table must keep producing (the
# EXPERIMENTS.md seed). `go run` both builds and executes it, so an API
# drift or a topology regression fails `make check` even when no unit test
# covers the command.
check-topology:
	$(GO) run ./cmd/experiments topology > /dev/null

# Placement gate: the optimizer must keep recovering at least the block
# placement's makespan from a random placement on the 64-rank × 16/node
# halo profile (PlacementTable errors out otherwise — an acceptance
# criterion, not just a smoke run).
check-placement:
	$(GO) run ./cmd/experiments placement > /dev/null

# Kernels gate: the distributed-kernel table carries three acceptance
# criteria (KernelsTable errors out if any fails): Rabenseifner strictly
# beats the tree allreduce in virtual time and wire volume on large
# vectors; the distributed cholesky factorizes bitwise-equal to the serial
# reference under injected faults, with hierarchical broadcasts strictly
# cutting inter-node wire volume; and the placement optimizer strictly
# beats the seeded random start on the recorded cholesky traffic.
check-kernels:
	$(GO) run ./cmd/experiments kernels > /dev/null

# Sweep gate: run a small replication sweep twice through one engine and
# require the second pass to be ≥90% cache hits with a bitwise-identical
# table (cmd/replicate -check-cache exits non-zero otherwise). This locks
# the engine's determinism end to end: key canonicalization, singleflight,
# LRU and result cloning all sit on this path.
check-sweep:
	$(GO) run ./cmd/replicate -bench cholesky -scale tiny -nodes 1,2,4 -rate 1e-3 -check-cache > /dev/null

# Service gate: boot appfitd on loopback, drive a 10×-skewed two-tenant
# closed loop through appfit-load, and require both tenants to complete
# work in proportion to their (equal) weights, a clean drain on SIGTERM
# and balanced admission accounting (the script and appfitd both exit
# non-zero otherwise).
check-serve:
	sh scripts/check_serve.sh

# The communicator-isolation gate, named explicitly so `make check` always
# runs it under -race even if the full race suite is trimmed: two Split
# groups plus a same-members alias communicator carrying identical tags at
# 64 ranks must never cross-match (`race` runs it too; -count=1 defeats the
# test cache so this target always re-executes it).
race-comm:
	$(GO) test -race -count=1 -run 'TestCommContextIsolation64Ranks' ./internal/dist

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full benchmark pass: the paper-figure benches at the repo root, then the
# scale suite, whose results are recorded as the BENCH_scale.json baseline —
# the repo's perf trajectory, one data point per PR that touches a hot path.
bench: bench-figures bench-scale

bench-figures:
	$(GO) test -bench=. -benchmem -run=^$$ .

bench-scale:
	$(GO) test -run='^$$' -bench=. -benchmem -benchtime=0.5s ./internal/bench/scale \
		| $(GO) run ./cmd/benchjson -suite scale -out BENCH_scale.json

# Run every scale benchmark exactly once: compiles them and executes one
# iteration, catching drift that `go vet` and unit tests cannot see.
bench-build:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./internal/bench/scale

# Regression guard: rerun the scale suite into a fresh JSON and fail if any
# gated metric regressed against the committed BENCH_scale.json baseline —
# 25% on ns/op (wall-time noise margin) and 1% on vus/op (virtual makespans
# are deterministic; any drift is a real routing/search change). Run on
# hardware comparable to the baseline's recorded cpu: field — the ns/op
# threshold absorbs noise, not machine changes.
bench-compare:
	$(GO) test -run='^$$' -bench=. -benchmem -benchtime=0.5s ./internal/bench/scale \
		| $(GO) run ./cmd/benchjson -suite scale -out /tmp/BENCH_scale.new.json
	$(GO) run ./cmd/benchjson -compare BENCH_scale.json /tmp/BENCH_scale.new.json

# Compile every example and command entry point; catches facade drift that
# package tests cannot see.
build-examples:
	$(GO) build -o /dev/null ./examples/... ./cmd/...

# Run the fast examples end to end (the demos print their own evidence).
run-examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/hybrid_pingpong
	$(GO) run ./examples/distributed_nbody
